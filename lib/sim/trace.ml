type kind =
  | Read of { reg : int; reg_name : string; value : string }
  | Write of { reg : int; reg_name : string; value : string }
  | Spawn
  | Done
  | Crash

type event = {
  index : int;
  time : int;
  pid : int;
  proc_name : string;
  kind : kind;
  step : int;
}

type t = {
  mutable events_rev : event list;
  mutable fwd : event list option;  (* cached forward view, None when stale *)
  mutable count : int;
}

let attach rt =
  let t = { events_rev = []; fwd = None; count = 0 } in
  Runtime.set_value_capture rt true;
  let mem = Runtime.memory rt in
  let push p kind =
    let e =
      {
        index = t.count;
        time = Runtime.commits rt;
        pid = Runtime.pid p;
        proc_name = Runtime.proc_name p;
        kind;
        step = Runtime.steps p;
      }
    in
    t.events_rev <- e :: t.events_rev;
    t.fwd <- None;
    t.count <- t.count + 1
  in
  (* Processes spawned before the trace attached still get lifecycle
     events, synthesized here at the current clock — so a trace always
     opens with one Spawn per live process. *)
  for pid = 0 to Runtime.nprocs rt - 1 do
    let p = Runtime.proc_by_pid rt pid in
    push p Spawn;
    match Runtime.status p with
    | Runtime.Runnable -> ()
    | Runtime.Done -> push p Done
    | Runtime.Crashed -> push p Crash
  done;
  Runtime.on_commit rt (fun p op ->
      let kind =
        match op with
        | Runtime.Read r ->
            Read { reg = r; reg_name = Memory.name_of mem r; value = Runtime.last_value rt }
        | Runtime.Write r ->
            Write { reg = r; reg_name = Memory.name_of mem r; value = Runtime.last_value rt }
      in
      push p kind);
  Runtime.on_lifecycle rt (fun p lc ->
      push p
        (match lc with
        | Runtime.Spawned -> Spawn
        | Runtime.Finished -> Done
        | Runtime.Killed -> Crash));
  t

let events t =
  match t.fwd with
  | Some l -> l
  | None ->
      let l = List.rev t.events_rev in
      t.fwd <- Some l;
      l

let length t = t.count

(* Single pass over the reversed list: prepending matches re-filtered
   into an accumulator yields oldest-first order with no intermediate
   list materialized. *)
let by_process t pid =
  List.fold_left (fun acc e -> if e.pid = pid then e :: acc else acc) [] t.events_rev

let writes_to t reg_id =
  List.fold_left
    (fun acc e ->
      match e.kind with Write w when w.reg = reg_id -> e :: acc | _ -> acc)
    [] t.events_rev

let pp_event ppf e =
  match e.kind with
  | Read { reg; reg_name; value } ->
      Format.fprintf ppf "#%d [t%d] %s(p%d) read %s[reg%d] = %s (local step %d)" e.index
        e.time e.proc_name e.pid reg_name reg value e.step
  | Write { reg; reg_name; value } ->
      Format.fprintf ppf "#%d [t%d] %s(p%d) write %s[reg%d] := %s (local step %d)" e.index
        e.time e.proc_name e.pid reg_name reg value e.step
  | Spawn -> Format.fprintf ppf "#%d [t%d] %s(p%d) spawn" e.index e.time e.proc_name e.pid
  | Done ->
      Format.fprintf ppf "#%d [t%d] %s(p%d) done (after %d steps)" e.index e.time
        e.proc_name e.pid e.step
  | Crash ->
      Format.fprintf ppf "#%d [t%d] %s(p%d) CRASH (after %d steps)" e.index e.time
        e.proc_name e.pid e.step

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
