(* The simulator as a BACKEND (DESIGN.md §12): registers suspend the
   calling process via the effect handler, so the scheduler commits one
   shared-memory operation at a time.  [yield] is a no-op — every
   read/write is already a scheduling point. *)

let backend = "sim"

type memory = Memory.t
type 'a reg = 'a Register.t
type runner = Runtime.t

let alloc mem ~name init = Register.create mem ~name init
let read = Runtime.read
let write = Runtime.write
let peek = Register.peek
let registers = Memory.registers
let spawn rt ~name body = ignore (Runtime.spawn rt ~name body)
let yield () = ()
