(** Atomic multi-reader multi-writer shared registers.

    Registers are the only means of inter-process communication in the
    model.  A register is typed by the values it holds; protocols define a
    value type per register family (commonly ['a option] with [None] playing
    the paper's [null]).

    Reads and writes of registers are {e not} performed through this module
    directly by protocol code: processes running under {!Runtime} use
    {!Runtime.read} and {!Runtime.write}, which suspend the process so the
    scheduler can interleave operations.  The accessors here ([peek],
    [poke]) act immediately and are reserved for initialisation and for
    test-harness inspection outside of simulated executions. *)

type 'a t

val create : Memory.t -> name:string -> 'a -> 'a t
(** [create mem ~name init] allocates a fresh register holding [init].
    [name] is a diagnostic label used in traces. *)

val id : 'a t -> int
(** Unique identifier within the owning memory. *)

val name : 'a t -> string
(** Diagnostic label. *)

val peek : 'a t -> 'a
(** Current value, outside of any simulated execution. *)

val poke : 'a t -> 'a -> unit
(** Overwrite the value, outside of any simulated execution. *)

val reads : 'a t -> int
(** Committed reads of this register. *)

val writes : 'a t -> int
(** Committed writes to this register. *)

val set_printer : 'a t -> ('a -> string) -> unit
(** Install a value printer used by value-carrying traces ({!Trace}).
    Without one, traced values render as a 24-bit fingerprint hash
    ([#a3f2d1]) — stable for a given value, but not human-readable. *)

val render : 'a t -> 'a -> string
(** Render a value with the register's printer (or the fingerprint-hash
    fallback).  Used by the runtime when value capture is enabled. *)

(**/**)

(* Internal: used by Runtime to commit operations. *)
val commit_read : 'a t -> 'a
val commit_write : 'a t -> 'a -> unit
val memory : 'a t -> Memory.t
