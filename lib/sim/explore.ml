type choice = Step of int | Crash of int

type reduction = [ `None | `Sleep_sets | `State_hash ]

type outcome = {
  paths : int;
  states : int;
  truncated : bool;
  failure : (string * choice list) option;
}

exception Done of outcome

let pp_choice ppf = function
  | Step pid -> Format.fprintf ppf "step p%d" pid
  | Crash pid -> Format.fprintf ppf "crash p%d" pid

let independent op1 op2 =
  match (op1, op2) with
  | Runtime.Read _, Runtime.Read _ -> true
  | Runtime.Read r, Runtime.Write w | Runtime.Write w, Runtime.Read r -> r <> w
  | Runtime.Write a, Runtime.Write b -> a <> b

let apply rt = function
  | Step pid -> Runtime.commit rt (Runtime.proc_by_pid rt pid)
  | Crash pid -> Runtime.crash rt (Runtime.proc_by_pid rt pid)

let replay rt choices = List.iter (apply rt) choices

(* Depth-first over choice sequences.  One live runtime advances along the
   current path; alternative children are parked on an explicit frontier
   stack as (reversed prefix, choice) frames whose prefix tails are shared
   cons cells.  Backtracking pops the deepest frame, re-instantiates the
   runtime and replays that frame's prefix — so each prefix is replayed
   exactly once per emitted path (O(depth) per path) instead of once per
   DFS node (O(depth^2) per path), and memory use stays flat.  Frames are
   pushed right-sibling-first so pops preserve the left-to-right DFS order
   of the historical recursive engine: [paths], [states] and the first
   counterexample are bit-identical to it. *)
let run ?(max_crashes = 0) ?(max_paths = 1_000_000) ?(reduction = `None) ~init ~check
    () =
  if reduction = `Sleep_sets && max_crashes > 0 then
    invalid_arg "Explore.run: sleep-set reduction requires max_crashes = 0";
  let paths = ref 0 in
  let states = ref 0 in
  let finish_path ctx rt prefix_rev =
    incr paths;
    (match check ctx rt with
    | Ok () -> ()
    | Error msg ->
        raise
          (Done
             {
               paths = !paths;
               states = !states;
               truncated = false;
               failure = Some (msg, List.rev prefix_rev);
             }));
    if !paths >= max_paths then
      raise (Done { paths = !paths; states = !states; truncated = true; failure = None })
  in
  (* Unreduced engine, with crash decisions and optional state-hash
     memoization.  [memo] maps (state signature, crashes used) to (); a
     node whose key was already expanded has an identical subtree (see
     DESIGN.md §8) and is pruned. *)
  let run_full ~memo () =
    let stack = ref [] in
    (* frames: (prefix_rev, choice, crashes after taking choice) *)
    let boot () =
      let ctx, rt = init () in
      if memo <> None then Runtime.enable_state_tracking rt;
      (ctx, rt)
    in
    let current = ref (Some (boot (), ([] : choice list), 0)) in
    let finished = ref false in
    while not !finished do
      match !current with
      | None -> (
          match !stack with
          | [] -> finished := true
          | (prefix_rev, choice, crashes) :: rest ->
              stack := rest;
              let ((_, rt) as node) = boot () in
              replay rt (List.rev prefix_rev);
              incr states;
              apply rt choice;
              current := Some (node, choice :: prefix_rev, crashes))
      | Some (((ctx, rt) as node), prefix_rev, crashes) ->
          let skip =
            match memo with
            | None -> false
            | Some seen ->
                let key = (Runtime.state_signature rt * 31) + crashes in
                if Hashtbl.mem seen key then true
                else begin
                  Hashtbl.add seen key ();
                  false
                end
          in
          if skip then current := None
          else if Runtime.num_runnable rt = 0 then begin
            finish_path ctx rt prefix_rev;
            current := None
          end
          else begin
            let pids = List.map Runtime.pid (Runtime.runnable rt) in
            let children =
              List.map (fun pid -> (Step pid, crashes)) pids
              @
              if crashes < max_crashes then
                List.map (fun pid -> (Crash pid, crashes + 1)) pids
              else []
            in
            match children with
            | [] -> assert false (* num_runnable > 0 *)
            | (c0, cr0) :: siblings ->
                List.iter
                  (fun (c, cr) -> stack := (prefix_rev, c, cr) :: !stack)
                  (List.rev siblings);
                incr states;
                apply rt c0;
                current := Some (node, c0 :: prefix_rev, cr0)
          end
    done
  in
  (* Sleep-set engine.  A sleep set holds (pid, pending op) pairs whose
     immediate exploration from this node is provably redundant: executing
     a sleeping operation first only commutes independent neighbours of an
     already-explored branch.  A sleeping process wakes (drops out of the
     set) as soon as a dependent operation executes.  Membership tests use
     a pid-indexed bitset; the entry list is kept for computing child
     sleep sets. *)
  let sleep_bits entries =
    List.fold_left
      (fun b (pid, _) ->
        if pid >= Sys.int_size - 2 then
          invalid_arg "Explore.run: sleep sets support at most 61 pids";
        b lor (1 lsl pid))
      0 entries
  in
  let run_sleep () =
    let stack = ref [] in
    (* frames: (prefix_rev, pid to step, child sleep entries) *)
    let current = ref (Some (init (), ([] : choice list), [])) in
    let finished = ref false in
    while not !finished do
      match !current with
      | None -> (
          match !stack with
          | [] -> finished := true
          | (prefix_rev, pid, child_sleep) :: rest ->
              stack := rest;
              let ((_, rt) as node) = init () in
              replay rt (List.rev prefix_rev);
              incr states;
              apply rt (Step pid);
              current := Some (node, Step pid :: prefix_rev, child_sleep))
      | Some (((ctx, rt) as node), prefix_rev, sleep) ->
          if Runtime.num_runnable rt = 0 then begin
            finish_path ctx rt prefix_rev;
            current := None
          end
          else begin
            let enabled =
              List.map
                (fun p ->
                  match Runtime.pending p with
                  | Some op -> (Runtime.pid p, op)
                  | None -> assert false (* runnable implies pending *))
                (Runtime.runnable rt)
            in
            let sleeping = sleep_bits sleep in
            let candidates =
              List.filter (fun (pid, _) -> sleeping land (1 lsl pid) = 0) enabled
            in
            match candidates with
            (* all enabled moves sleeping: this branch is covered elsewhere *)
            | [] -> current := None
            | (pid0, op0) :: siblings ->
                (* candidate [i] sleeps on the node's sleep set plus the
                   candidates explored before it, restricted to ops
                   independent of its own *)
                let _, frames =
                  List.fold_left
                    (fun (before, acc) (pid, op) ->
                      let child =
                        List.filter (fun (_, op') -> independent op op') (sleep @ before)
                      in
                      ((pid, op) :: before, (prefix_rev, pid, child) :: acc))
                    ([ (pid0, op0) ], [])
                    siblings
                in
                stack := List.rev_append frames !stack;
                incr states;
                apply rt (Step pid0);
                let child0 =
                  List.filter (fun (_, op') -> independent op0 op') sleep
                in
                current := Some (node, Step pid0 :: prefix_rev, child0)
          end
    done
  in
  try
    (match reduction with
    | `Sleep_sets -> run_sleep ()
    | `None -> run_full ~memo:None ()
    | `State_hash -> run_full ~memo:(Some (Hashtbl.create 4096)) ());
    { paths = !paths; states = !states; truncated = false; failure = None }
  with Done o -> o
