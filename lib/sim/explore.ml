type choice = Step of int | Crash of int

type reduction = [ `None | `Sleep_sets | `State_hash ]

type stats = {
  max_depth : int;
  replays : int;
  sleep_prunes : int;
  hash_hits : int;
  hash_misses : int;
  depth_histogram : (int * int) list;
}

let empty_stats =
  {
    max_depth = 0;
    replays = 0;
    sleep_prunes = 0;
    hash_hits = 0;
    hash_misses = 0;
    depth_histogram = [];
  }

type outcome = {
  paths : int;
  states : int;
  truncated : bool;
  failure : (string * choice list) option;
  failure_trace : Trace.event list;
  stats : stats;
}

exception Done of outcome

let pp_choice ppf = function
  | Step pid -> Format.fprintf ppf "step p%d" pid
  | Crash pid -> Format.fprintf ppf "crash p%d" pid

let independent op1 op2 =
  match (op1, op2) with
  | Runtime.Read _, Runtime.Read _ -> true
  | Runtime.Read r, Runtime.Write w | Runtime.Write w, Runtime.Read r -> r <> w
  | Runtime.Write a, Runtime.Write b -> a <> b

let apply rt = function
  | Step pid -> Runtime.commit rt (Runtime.proc_by_pid rt pid)
  | Crash pid -> Runtime.crash rt (Runtime.proc_by_pid rt pid)

let replay rt choices = List.iter (apply rt) choices

(* Depth-first over choice sequences.  One live runtime advances along the
   current path; alternative children are parked on an explicit frontier
   stack as (reversed prefix, choice) frames whose prefix tails are shared
   cons cells.  Backtracking pops the deepest frame, re-instantiates the
   runtime and replays that frame's prefix — so each prefix is replayed
   exactly once per emitted path (O(depth) per path) instead of once per
   DFS node (O(depth^2) per path), and memory use stays flat.  Frames are
   pushed right-sibling-first so pops preserve the left-to-right DFS order
   of the historical recursive engine: [paths], [states] and the first
   counterexample are bit-identical to it.

   [start] restricts the engine to the subtree under one root choice —
   the unit the multicore driver shards across domains.  Its counter
   seeds make the per-shard counters line up exactly with the slice of a
   sequential run that explores the same subtree: the root edge counts
   one state inside its own shard, and every shard after the leftmost
   opens with the one frontier-pop replay the sequential engine performs
   to enter it. *)
type start = {
  st_prefix : choice list;  (* root choices already taken ([] = whole tree) *)
  st_crashes : int;  (* crash budget consumed by the prefix *)
  st_sleep : (int * Runtime.op_kind) list;  (* initial sleep set (sleep engine) *)
  st_states : int;  (* states counter seed *)
  st_replays : int;  (* replays counter seed *)
}

let root_start =
  { st_prefix = []; st_crashes = 0; st_sleep = []; st_states = 0; st_replays = 0 }

(* Progress callbacks fire once per [progress_chunk] completed paths —
   frequent enough to watch a long exploration, cheap enough (one
   comparison per path) to leave the P3 throughput envelope alone. *)
let progress_chunk = 1024

let single ~max_crashes ~max_paths ~reduction ~start ~init ~check
    ?(on_progress = fun (_ : int) -> ()) () =
  let paths = ref 0 in
  let last_progress = ref 0 in
  let states = ref start.st_states in
  let max_depth = ref 0 in
  let replays = ref start.st_replays in
  let sleep_prunes = ref 0 in
  let hash_hits = ref 0 in
  let hash_misses = ref 0 in
  let depth_hist : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let mk_stats () =
    {
      max_depth = !max_depth;
      replays = !replays;
      sleep_prunes = !sleep_prunes;
      hash_hits = !hash_hits;
      hash_misses = !hash_misses;
      depth_histogram =
        Hashtbl.fold (fun d c acc -> (d, c) :: acc) depth_hist []
        |> List.sort compare;
    }
  in
  (* On violation, re-execute the offending schedule against a fresh
     instance with a value-carrying trace attached — the counterexample
     becomes a full forensic history, not just a choice list. *)
  let capture_trace schedule =
    let _ctx, rt = init () in
    let tr = Trace.attach rt in
    incr replays;
    replay rt schedule;
    Trace.events tr
  in
  let finish_path ctx rt prefix_rev =
    incr paths;
    if !paths - !last_progress >= progress_chunk then begin
      on_progress (!paths - !last_progress);
      last_progress := !paths
    end;
    let depth = List.length prefix_rev in
    if depth > !max_depth then max_depth := depth;
    Hashtbl.replace depth_hist depth
      (1 + Option.value ~default:0 (Hashtbl.find_opt depth_hist depth));
    (match check ctx rt with
    | Ok () -> ()
    | Error msg ->
        let schedule = List.rev prefix_rev in
        raise
          (Done
             {
               paths = !paths;
               states = !states;
               truncated = false;
               failure = Some (msg, schedule);
               failure_trace = capture_trace schedule;
               stats = mk_stats ();
             }));
    if !paths >= max_paths then
      raise
        (Done
           {
             paths = !paths;
             states = !states;
             truncated = true;
             failure = None;
             failure_trace = [];
             stats = mk_stats ();
           })
  in
  (* Unreduced engine, with crash decisions and optional state-hash
     memoization.  [memo] maps (state signature, crashes used) to (); a
     node whose key was already expanded has an identical subtree (see
     DESIGN.md §8) and is pruned. *)
  let run_full ~memo () =
    let stack = ref [] in
    (* frames: (prefix_rev, choice, crashes after taking choice) *)
    let boot () =
      let ctx, rt = init () in
      if memo <> None then Runtime.enable_state_tracking rt;
      (ctx, rt)
    in
    let boot0 () =
      let ((_, rt) as node) = boot () in
      List.iter (apply rt) start.st_prefix;
      node
    in
    let current =
      ref (Some (boot0 (), List.rev start.st_prefix, start.st_crashes))
    in
    let finished = ref false in
    while not !finished do
      match !current with
      | None -> (
          match !stack with
          | [] -> finished := true
          | (prefix_rev, choice, crashes) :: rest ->
              stack := rest;
              let ((_, rt) as node) = boot () in
              incr replays;
              replay rt (List.rev prefix_rev);
              incr states;
              apply rt choice;
              current := Some (node, choice :: prefix_rev, crashes))
      | Some (((ctx, rt) as node), prefix_rev, crashes) ->
          let skip =
            match memo with
            | None -> false
            | Some seen ->
                let key = (Runtime.state_signature rt * 31) + crashes in
                if Hashtbl.mem seen key then begin
                  incr hash_hits;
                  true
                end
                else begin
                  incr hash_misses;
                  Hashtbl.add seen key ();
                  false
                end
          in
          if skip then current := None
          else if Runtime.num_runnable rt = 0 then begin
            finish_path ctx rt prefix_rev;
            current := None
          end
          else begin
            let pids = List.map Runtime.pid (Runtime.runnable rt) in
            let children =
              List.map (fun pid -> (Step pid, crashes)) pids
              @
              if crashes < max_crashes then
                List.map (fun pid -> (Crash pid, crashes + 1)) pids
              else []
            in
            match children with
            | [] -> assert false (* num_runnable > 0 *)
            | (c0, cr0) :: siblings ->
                List.iter
                  (fun (c, cr) -> stack := (prefix_rev, c, cr) :: !stack)
                  (List.rev siblings);
                incr states;
                apply rt c0;
                current := Some (node, c0 :: prefix_rev, cr0)
          end
    done
  in
  (* Sleep-set engine.  A sleep set holds (pid, pending op) pairs whose
     immediate exploration from this node is provably redundant: executing
     a sleeping operation first only commutes independent neighbours of an
     already-explored branch.  A sleeping process wakes (drops out of the
     set) as soon as a dependent operation executes.  Membership tests use
     a pid-indexed bitset; the entry list is kept for computing child
     sleep sets. *)
  let sleep_bits entries =
    List.fold_left
      (fun b (pid, _) ->
        if pid >= Sys.int_size - 2 then
          invalid_arg "Explore.run: sleep sets support at most 61 pids";
        b lor (1 lsl pid))
      0 entries
  in
  let run_sleep () =
    let stack = ref [] in
    (* frames: (prefix_rev, pid to step, child sleep entries) *)
    let boot0 () =
      let ((_, rt) as node) = init () in
      List.iter (apply rt) start.st_prefix;
      node
    in
    let current =
      ref (Some (boot0 (), List.rev start.st_prefix, start.st_sleep))
    in
    let finished = ref false in
    while not !finished do
      match !current with
      | None -> (
          match !stack with
          | [] -> finished := true
          | (prefix_rev, pid, child_sleep) :: rest ->
              stack := rest;
              let ((_, rt) as node) = init () in
              incr replays;
              replay rt (List.rev prefix_rev);
              incr states;
              apply rt (Step pid);
              current := Some (node, Step pid :: prefix_rev, child_sleep))
      | Some (((ctx, rt) as node), prefix_rev, sleep) ->
          if Runtime.num_runnable rt = 0 then begin
            finish_path ctx rt prefix_rev;
            current := None
          end
          else begin
            let enabled =
              List.map
                (fun p ->
                  match Runtime.pending p with
                  | Some op -> (Runtime.pid p, op)
                  | None -> assert false (* runnable implies pending *))
                (Runtime.runnable rt)
            in
            let sleeping = sleep_bits sleep in
            let candidates =
              List.filter (fun (pid, _) -> sleeping land (1 lsl pid) = 0) enabled
            in
            match candidates with
            (* all enabled moves sleeping: this branch is covered elsewhere *)
            | [] ->
                incr sleep_prunes;
                current := None
            | (pid0, op0) :: siblings ->
                (* candidate [i] sleeps on the node's sleep set plus the
                   candidates explored before it, restricted to ops
                   independent of its own *)
                let _, frames =
                  List.fold_left
                    (fun (before, acc) (pid, op) ->
                      let child =
                        List.filter (fun (_, op') -> independent op op') (sleep @ before)
                      in
                      ((pid, op) :: before, (prefix_rev, pid, child) :: acc))
                    ([ (pid0, op0) ], [])
                    siblings
                in
                stack := List.rev_append frames !stack;
                incr states;
                apply rt (Step pid0);
                let child0 =
                  List.filter (fun (_, op') -> independent op0 op') sleep
                in
                current := Some (node, Step pid0 :: prefix_rev, child0)
          end
    done
  in
  try
    (match reduction with
    | `Sleep_sets -> run_sleep ()
    | `None -> run_full ~memo:None ()
    | `State_hash -> run_full ~memo:(Some (Hashtbl.create 4096)) ());
    {
      paths = !paths;
      states = !states;
      truncated = false;
      failure = None;
      failure_trace = [];
      stats = mk_stats ();
    }
  with Done o -> o

(* {2 Multicore driver} *)

let merge_histograms h1 h2 =
  let tbl = Hashtbl.create 64 in
  let add (d, c) =
    Hashtbl.replace tbl d (c + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  in
  List.iter add h1;
  List.iter add h2;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let add_stats a b =
  {
    max_depth = max a.max_depth b.max_depth;
    replays = a.replays + b.replays;
    sleep_prunes = a.sleep_prunes + b.sleep_prunes;
    hash_hits = a.hash_hits + b.hash_hits;
    hash_misses = a.hash_misses + b.hash_misses;
    depth_histogram = merge_histograms a.depth_histogram b.depth_histogram;
  }

(* With [jobs > 1] the tree is sharded at the root: each top-level choice
   (every runnable pid's step, plus every crash decision when allowed)
   roots an independent subtree explored by [single] on its own domain,
   and the shard outcomes are folded back {e in root order}.  Because the
   sequential DFS explores those same subtrees left to right and its
   counters are additive over them, the fold reproduces its outcome
   field-for-field: the first violation reported is the sequential
   engine's first violation, counted at the same paths/states.  The one
   wrinkle is [max_paths]: a shard runs with the full budget, so when the
   budget would have expired {e inside} shard [i] (cumulative paths of
   shards [0..i] reaching it), that single shard is re-run sequentially
   with the exact remaining budget to recover the truncation-point
   counters byte-for-byte.  [`State_hash] memoization shares one memo
   table across the whole tree, which no per-shard table can reproduce —
   that mode ignores [jobs] and runs sequentially. *)
let run ?(max_crashes = 0) ?(max_paths = 1_000_000) ?(reduction = `None)
    ?(jobs = 1) ?(on_progress = fun (_ : int) -> ()) ~init ~check () =
  if reduction = `Sleep_sets && max_crashes > 0 then
    invalid_arg "Explore.run: sleep-set reduction requires max_crashes = 0";
  let sequential () =
    single ~max_crashes ~max_paths ~reduction ~start:root_start ~init ~check
      ~on_progress ()
  in
  if jobs <= 1 || reduction = `State_hash then sequential ()
  else begin
    let _, rt0 = init () in
    if Runtime.num_runnable rt0 = 0 then sequential ()
    else begin
      let enabled =
        List.map
          (fun p ->
            match Runtime.pending p with
            | Some op -> (Runtime.pid p, op)
            | None -> assert false (* runnable implies pending *))
          (Runtime.runnable rt0)
      in
      let shards =
        match reduction with
        | `State_hash -> assert false
        | `None ->
            List.map (fun (pid, _) -> (Step pid, 0, [])) enabled
            @
            if max_crashes > 0 then
              List.map (fun (pid, _) -> (Crash pid, 1, [])) enabled
            else []
        | `Sleep_sets ->
            (* mirror [run_sleep]'s root expansion: candidate [i] sleeps
               on the candidates explored before it, restricted to ops
               independent of its own *)
            let rec go before acc = function
              | [] -> List.rev acc
              | (pid, op) :: rest ->
                  let child =
                    List.filter (fun (_, op') -> independent op op') before
                  in
                  go ((pid, op) :: before) ((Step pid, 0, child) :: acc) rest
            in
            go [] [] enabled
      in
      let starts =
        List.mapi
          (fun i (c, crashes, sleep) ->
            {
              st_prefix = [ c ];
              st_crashes = crashes;
              st_sleep = sleep;
              st_states = 1;
              st_replays = (if i = 0 then 0 else 1);
            })
          shards
      in
      let run_shard ~budget st =
        single ~max_crashes ~max_paths:budget ~reduction ~start:st ~init ~check
          ~on_progress ()
      in
      let results = Pool.map ~jobs (run_shard ~budget:max_paths) starts in
      let rec fold acc_paths acc_states acc_stats = function
        | [] ->
            {
              paths = acc_paths;
              states = acc_states;
              truncated = false;
              failure = None;
              failure_trace = [];
              stats = acc_stats;
            }
        | (st, r) :: rest -> (
            let remaining = max_paths - acc_paths in
            match r.failure with
            | Some _ when r.paths <= remaining ->
                (* the sequential engine reaches this violation before its
                   budget expires; the shard stopped right at it, so its
                   counters are the sequential ones *)
                {
                  paths = acc_paths + r.paths;
                  states = acc_states + r.states;
                  truncated = false;
                  failure = r.failure;
                  failure_trace = r.failure_trace;
                  stats = add_stats acc_stats r.stats;
                }
            | _ when r.paths >= remaining ->
                (* the budget expires inside this shard (or before the
                   shard's violation): re-run just this shard with the
                   exact remaining budget for truncation-point counters *)
                let r =
                  if remaining = max_paths then r
                  else run_shard ~budget:remaining st
                in
                {
                  paths = acc_paths + r.paths;
                  states = acc_states + r.states;
                  truncated = r.truncated;
                  failure = r.failure;
                  failure_trace = r.failure_trace;
                  stats = add_stats acc_stats r.stats;
                }
            | _ ->
                fold (acc_paths + r.paths) (acc_states + r.states)
                  (add_stats acc_stats r.stats)
                  rest)
      in
      fold 0 0 empty_stats (List.combine starts results)
    end
  end

(* {2 Counterexample shrinking} *)

(* ddmin-style greedy minimizer.  A candidate is a subsequence of the
   original schedule; replaying it skips choices that no longer apply
   (their process is not runnable) and then drives the remaining
   processes to quiescence in pid order — so every candidate evaluation
   yields a *complete* schedule whose quiescent state [check] can judge.
   The completion step is what lets dropping a choice implicitly reorder
   the tail.  A candidate is accepted only if its completed schedule is
   strictly shorter than the incumbent and still violates the invariant;
   sweeps repeat until a full pass finds no improvement, which makes the
   result a deterministic fixpoint: shrinking an already-shrunk schedule
   returns it unchanged. *)
let shrink ~init ~check schedule =
  let applicable rt = function
    | Step pid | Crash pid ->
        pid >= 0
        && pid < Runtime.nprocs rt
        && Runtime.status (Runtime.proc_by_pid rt pid) = Runtime.Runnable
  in
  let try_candidate cand =
    let ctx, rt = init () in
    let executed = ref [] in
    List.iter
      (fun c ->
        if applicable rt c then begin
          apply rt c;
          executed := c :: !executed
        end)
      cand;
    while not (Runtime.all_quiet rt) do
      let p = Runtime.nth_runnable rt 0 in
      Runtime.commit rt p;
      executed := Step (Runtime.pid p) :: !executed
    done;
    match check ctx rt with Error _ -> Some (List.rev !executed) | Ok () -> None
  in
  let best =
    match try_candidate schedule with
    | Some s when List.length s <= List.length schedule -> ref s
    | Some _ -> ref schedule
    | None -> invalid_arg "Explore.shrink: schedule does not violate the invariant"
  in
  let improved = ref true in
  while !improved do
    improved := false;
    (* chunk sizes from half the schedule down to single choices *)
    let size = ref (max 1 (List.length !best / 2)) in
    while !size >= 1 do
      let i = ref 0 in
      let continue_sweep = ref true in
      while !continue_sweep do
        let cur = !best in
        let len = List.length cur in
        if !i >= len then continue_sweep := false
        else begin
          let lo = !i and hi = !i + !size in
          let cand = List.filteri (fun j _ -> j < lo || j >= hi) cur in
          match try_candidate cand with
          | Some s when List.length s < len ->
              best := s;
              improved := true
              (* the list shrank under [i]; retry the same offset *)
          | Some _ | None -> i := !i + !size
        end
      done;
      size := if !size = 1 then 0 else !size / 2
    done
  done;
  !best
