(** The simulator instantiation of {!Exsel_backend.Intf.S}.

    [read]/[write] are {!Runtime.read}/{!Runtime.write} — they suspend
    the calling logical process at every register access, which is what
    makes exploration, conformance regimes and replay possible.  The
    renaming algorithms are functors over the interface and are
    instantiated with this module at their top level, so their existing
    simulator APIs (and every seeded output) are unchanged. *)

include
  Exsel_backend.Intf.S
    with type memory = Memory.t
     and type 'a reg = 'a Register.t
     and type runner = Runtime.t
