type summary = {
  processes : int;
  completed : int;
  crashed : int;
  max_steps : int;
  total_steps : int;
  registers : int;
  reads : int;
  writes : int;
}

let of_runtime t =
  let mem = Runtime.memory t in
  let n = Runtime.nprocs t in
  let completed = ref 0 and crashed = ref 0 and total = ref 0 in
  for pid = 0 to n - 1 do
    let p = Runtime.proc_by_pid t pid in
    (match Runtime.status p with
    | Runtime.Done -> incr completed
    | Runtime.Crashed -> incr crashed
    | Runtime.Runnable -> ());
    total := !total + Runtime.steps p
  done;
  {
    processes = n;
    completed = !completed;
    crashed = !crashed;
    max_steps = Runtime.max_steps t;
    total_steps = !total;
    registers = Memory.registers mem;
    reads = Memory.reads mem;
    writes = Memory.writes mem;
  }

let pp ppf s =
  Format.fprintf ppf
    "procs=%d done=%d crashed=%d max_steps=%d total_steps=%d regs=%d r/w=%d/%d"
    s.processes s.completed s.crashed s.max_steps s.total_steps s.registers
    s.reads s.writes
