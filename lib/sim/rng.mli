(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator — schedulers, crash
    injection, expander sampling — draws from an explicit [Rng.t] created
    from a seed, so that entire executions are reproducible bit-for-bit.
    The global [Stdlib.Random] state is never touched. *)

type t
(** Mutable generator state. *)

type version = V1 | V2
(** Bounded-draw semantics, frozen per version so checked-in seeded
    artefacts never shift:

    - [V1] — the historical stream: [int] maps a 63-bit word through
      [Int64.rem], which carries a (tiny) modulo bias toward low
      residues.  Every seeded table, campaign schedule and perf baseline
      in the repository was produced by this stream, so it is preserved
      bit-for-bit forever.
    - [V2] — [int] is exactly uniform: draws from the incomplete
      trailing cycle of 2^63 mod bound are rejected and redrawn.  New
      subsystems (the adversary DSL, the open-loop workload generator)
      use V2. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh {!V1} generator determined by [seed]
    — the historical constructor, bit-identical to every release. *)

val create_v2 : seed:int -> t
(** [create_v2 ~seed] returns a fresh {!V2} (rejection-sampled,
    bias-free) generator determined by [seed].  Same state transition
    function as V1; only bounded draws differ. *)

val version : t -> version

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Streams produced by the two generators are statistically independent.
    The child inherits the parent's {!version}. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)] — exactly
    uniform under {!V2}, modulo-biased by at most [bound / 2^63] under
    {!V1}.
    @raise Invalid_argument if [bound <= 0]. *)

val bits64 : t -> int64
(** [bits64 t] draws 64 uniform bits. *)

val bool : t -> bool
(** [bool t] draws a uniform boolean. *)

val float : t -> float
(** [float t] draws a uniform float in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly at random. *)

val pick : t -> 'a list -> 'a
(** [pick t xs] returns a uniformly chosen element of [xs], with a single
    generator draw (so streams match the historical
    [List.nth xs (int t (List.length xs))] idiom) and no allocation.
    @raise Invalid_argument if [xs] is empty. *)

val pick_arr : t -> 'a array -> 'a
(** [pick_arr t a] returns a uniformly chosen element of [a] in O(1).
    @raise Invalid_argument if [a] is empty. *)

val pick_weighted : t -> ('a * int) list -> 'a * int
(** [pick_weighted t xs] draws element [x] of weight [w] with probability
    [w / total] and returns [(x, j)] with [j] uniform in [\[0, w)] — the
    offset lets a caller treat [x] as a bucket of [w] equally likely
    choices without materialising them.  Single pass, single draw.
    @raise Invalid_argument on a negative weight, an empty list, or an
    all-zero weight list (each with a distinct message naming the
    failure). *)
