(** Fixed-size domain pool: parallel map with deterministic merge order.

    [map ~jobs f items] applies [f] to every item, fanning the work out
    over [jobs] domains (the calling domain included), and returns the
    results {e in input order} — the completion order of the domains is
    unobservable.  If several applications raise, the exception of the
    earliest item (by input position) is re-raised, so even failures are
    deterministic.

    Requirements on [f]: it must not touch mutable state shared with
    other items (each campaign cell / explorer shard builds its own
    memory, runtime and observers from scratch).  All simulator ambient
    state is domain-local ([Domain.DLS], see DESIGN.md §10), so code
    running under [map] never observes another domain's runtimes. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] — [jobs] defaults to 1 (plain [List.map], no
    domains spawned); values above [List.length items] are clamped. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j 0] resolves to in
    the CLI. *)
