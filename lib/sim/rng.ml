type version = V1 | V2

type t = { mutable state : int64; version : version }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed); version = V1 }

let create_v2 ~seed = { state = mix64 (Int64.of_int seed); version = V2 }

let version t = t.version

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let bits64 t = next t

let split t = { state = next t; version = t.version }

(* V1 maps a 63-bit draw straight through [Int64.rem], which over-weights
   the low residues of any bound that does not divide 2^63 (by at most
   2^-50 for the small bounds the simulator uses — invisible in practice,
   but a bias all the same).  V2 rejects draws from the short final cycle
   so every residue class receives exactly the same number of 63-bit
   words.  V1 is frozen forever: seeded schedules, campaign tables and
   checked-in baselines depend on its exact stream. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  match t.version with
  | V1 ->
      let mask = Int64.shift_right_logical (next t) 1 in
      Int64.to_int (Int64.rem mask (Int64.of_int bound))
  | V2 ->
      let b = Int64.of_int bound in
      let rec draw () =
        let bits = Int64.shift_right_logical (next t) 1 in
        let r = Int64.rem bits b in
        (* accept unless [bits] fell in the incomplete trailing cycle:
           [bits - r + (b - 1)] overflows 63 bits exactly then (the Java
           [Random.nextInt] rejection test, lifted to 63-bit words) *)
        if Int64.add (Int64.sub bits r) (Int64.sub b 1L) < 0L then draw ()
        else Int64.to_int r
      in
      draw ()

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let bits53 = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits53 /. 9007199254740992.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs ->
      (* one length pass, one draw, one walk — no intermediate lists and
         the same single generator draw as the historical
         [List.nth xs (int t (List.length xs))] pattern *)
      let rec nth k = function
        | x :: rest -> if k = 0 then x else nth (k - 1) rest
        | [] -> assert false
      in
      nth (int t (List.length xs)) xs

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_arr: empty array";
  a.(int t (Array.length a))

let pick_weighted t xs =
  let total =
    List.fold_left
      (fun acc (_, w) ->
        if w < 0 then invalid_arg "Rng.pick_weighted: negative weight" else acc + w)
      0 xs
  in
  if total = 0 then
    invalid_arg
      (if xs = [] then "Rng.pick_weighted: empty list"
       else "Rng.pick_weighted: all weights are zero");
  let rec go k = function
    | (x, w) :: rest -> if k < w then (x, k) else go (k - w) rest
    | [] -> assert false
  in
  go (int t total) xs
