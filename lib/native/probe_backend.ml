(* Instrumented backend functor (DESIGN.md §13): wraps any
   Exsel_backend.Intf.S with per-register atomic read/write counters
   keyed by the allocation name.  The counters are Atomic.t cells
   updated with one fetch_and_add per shared-memory operation, so the
   wrapper is domain-safe but not free — the plain backend remains the
   fast path for baseline-gated benchmarks, and the probe is what the
   CLI's observability surfaces run. *)

module type S = sig
  include Exsel_backend.Intf.S

  type inner_memory

  val wrap : inner_memory -> memory
  val counts : memory -> (string * int * int) list
end

module Make (B : Exsel_backend.Intf.S) :
  S with type inner_memory = B.memory and type runner = B.runner = struct
  let backend = B.backend ^ "+probe"

  type probe = { p_name : string; p_reads : int Atomic.t; p_writes : int Atomic.t }

  type inner_memory = B.memory

  (* probes is only mutated at construction time (one domain, before any
     process runs — the Intf.S alloc contract), so a plain list works;
     the per-register counters are the concurrently-updated part. *)
  type memory = { inner : B.memory; mutable probes : probe list }

  type 'a reg = { r : 'a B.reg; reads : int Atomic.t; writes : int Atomic.t }

  type runner = B.runner

  let wrap inner = { inner; probes = [] }

  let alloc mem ~name init =
    let reads = Atomic.make 0 and writes = Atomic.make 0 in
    mem.probes <- { p_name = name; p_reads = reads; p_writes = writes } :: mem.probes;
    { r = B.alloc mem.inner ~name init; reads; writes }

  let read reg =
    ignore (Atomic.fetch_and_add reg.reads 1);
    B.read reg.r

  let write reg v =
    ignore (Atomic.fetch_and_add reg.writes 1);
    B.write reg.r v

  (* out-of-execution inspection is not a contention event *)
  let peek reg = B.peek reg.r

  let registers mem = B.registers mem.inner
  let spawn = B.spawn
  let yield = B.yield

  (* Aggregated by allocation name (algorithms allocate register arrays
     under one name), in first-allocation order. *)
  let counts mem =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun p ->
        let r = Atomic.get p.p_reads and w = Atomic.get p.p_writes in
        match Hashtbl.find_opt tbl p.p_name with
        | Some (r0, w0) -> Hashtbl.replace tbl p.p_name (r0 + r, w0 + w)
        | None ->
            Hashtbl.add tbl p.p_name (r, w);
            order := p.p_name :: !order)
      (List.rev mem.probes);
    List.rev_map
      (fun name ->
        let r, w = Hashtbl.find tbl name in
        (name, r, w))
      !order
end
