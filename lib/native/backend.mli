(** The native substrate: shared registers are [Atomic.t] cells (OCaml's
    atomics are sequentially consistent, which subsumes the paper's
    atomic read/write registers), processes are {!Engine} tasks on real
    domains.

    Register names are recorded in the memory at allocation time — there
    is still no register file to index (a register {e is} its atomic
    cell), but {!register_names} lets telemetry, diagnostics and the
    {!Probe_backend} wrapper label allocations.  [peek] is a plain
    [Atomic.get]: unlike the simulator there is no out-of-execution
    vantage point, so tests must peek only at quiescence (after
    {!Engine.run} returns). *)

include
  Exsel_backend.Intf.S
    with type 'a reg = 'a Atomic.t
     and type runner = Engine.t

val create : unit -> memory
(** A fresh register-accounting scope.  Build the algorithm (allocating
    all registers) on one domain before running the engine. *)

val register_names : memory -> string list
(** Allocation names in allocation order (duplicates possible when an
    algorithm allocates arrays under one name). *)
