let backend = "native"

(* Registers are allocated while the memory is built on one domain,
   before the engine starts any worker, so a plain counter suffices. *)
type memory = { mutable registers : int }

type 'a reg = 'a Atomic.t

type runner = Engine.t

let create () = { registers = 0 }

let alloc mem ~name:_ init =
  mem.registers <- mem.registers + 1;
  Atomic.make init

let read = Atomic.get
let write = Atomic.set
let peek = Atomic.get
let registers mem = mem.registers
let spawn eng ~name body = Engine.spawn eng ~name body
let yield () = Domain.cpu_relax ()
