let backend = "native"

(* Registers are allocated while the memory is built on one domain,
   before the engine starts any worker, so plain mutable state suffices.
   Allocation names are kept (reversed) so telemetry and the probe
   wrapper can label registers; the cells themselves stay bare Atomic.t
   values — the name list is never touched on the hot path. *)
type memory = { mutable names : string list }

type 'a reg = 'a Atomic.t

type runner = Engine.t

let create () = { names = [] }

let alloc mem ~name init =
  mem.names <- name :: mem.names;
  Atomic.make init

let read = Atomic.get
let write = Atomic.set
let peek = Atomic.get
let registers mem = List.length mem.names
let register_names mem = List.rev mem.names
let spawn eng ~name body = Engine.spawn eng ~name body
let yield () = Domain.cpu_relax ()
