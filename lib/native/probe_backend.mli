(** Register contention telemetry: an instrumented backend functor
    wrapping any {!Exsel_backend.Intf.S} with per-register atomic
    read/write counters keyed by the allocation name (DESIGN.md §13).

    [Make (B)] is itself an [Intf.S], so every functorized renaming
    algorithm runs on it unchanged.  Each [read]/[write] costs one extra
    [Atomic.fetch_and_add] on the register's counter — cheap but not
    free, which is why the harness keeps the uninstrumented backend as
    the fast path for baseline-gated benchmarks and reserves the probe
    for the CLI's observability surfaces ([--metrics-out], [--profile]).

    [peek] is deliberately not counted: it is the out-of-execution
    inspection hook, not a step of any process. *)

module type S = sig
  include Exsel_backend.Intf.S

  type inner_memory
  (** The wrapped backend's allocation arena. *)

  val wrap : inner_memory -> memory
  (** Build a probing arena over an existing inner memory.  Allocate all
      registers through the wrapper on one domain before any process
      runs (the {!Exsel_backend.Intf.S.alloc} contract). *)

  val counts : memory -> (string * int * int) list
  (** [(name, reads, writes)] per allocation name, aggregated over
      registers sharing a name (array allocations), in first-allocation
      order.  Read at quiescence for exact totals. *)
end

module Make (B : Exsel_backend.Intf.S) :
  S with type inner_memory = B.memory and type runner = B.runner
