(** Native rename campaigns: build an algorithm on {!Backend}, run one
    logical process per contender on the {!Engine} domain pool, record a
    decision log with wall-clock latencies, and check the paper's claims
    post hoc.

    The semantic gap to the simulator (DESIGN.md §12): there is no
    commit clock, so step budgets are not checked; there is no crash
    injection, so completion is always [All_named]; and the claim checks
    run after quiescence against the recorded log rather than inside the
    scheduler.  Exclusiveness and the name bounds are
    contention-independent, so they transfer unchanged.

    The flight recorder (DESIGN.md §13) adds three observability layers:
    the engine's per-task/per-domain telemetry rides along in every
    [run]; [~probe:true] reruns the algorithm on
    {!Probe_backend.Make}[ (Backend)] so per-register read/write
    counters are recorded (slower — bench baselines use the plain path);
    and {!trace_doc} renders the record as an [exsel-native-trace/1] /
    Chrome document via {!Exsel_obs.Trace_export.Native}. *)

type algo = Ma | Efficient | Adaptive

val algo_name : algo -> string
(** ["ma"], ["efficient"], ["adaptive"] — matches the conformance
    adapter ids. *)

val algo_of_string : string -> algo option

type reg_stat = {
  rs_name : string;  (** allocation name ({!Backend.register_names}) *)
  rs_reads : int;
  rs_writes : int;
}

type run = {
  algo : string;
  n : int;  (** contenders (= the algorithm's k, or n for Adaptive) *)
  domains : int;  (** requested pool size (actual: [telemetry.tl_domains]) *)
  seed : int;
  ids : int array;  (** original names, one per process *)
  names : int option array;  (** decision log, index-aligned with [ids] *)
  latency_ns : int64 array;  (** per-process wall-clock rename latency *)
  wall_ns : int64;  (** end-to-end wall clock of the engine run *)
  bound : int;  (** claimed exclusive upper bound on names *)
  registers : int;  (** atomic cells allocated *)
  telemetry : Engine.telemetry;  (** the engine's flight record *)
  warmup : int;  (** throwaway runs executed before the measured one *)
  warmup_ns : int64;  (** total wall clock of the warmup runs *)
  reg_stats : reg_stat list;
      (** per-register access counts, aggregated by allocation name in
          allocation order; [[]] unless run with [~probe:true] *)
}

val ns_to_int : int64 -> int
(** Clamp a nanosecond count into [[0, max_int]] — [Int64.to_int] wraps
    on platforms where the value exceeds the int range; quantiles and
    JSON fields want saturation instead. *)

val run :
  ?warmup:int ->
  ?probe:bool ->
  algo:algo ->
  n:int ->
  domains:int ->
  seed:int ->
  unit ->
  run
(** Build and execute one native campaign.  [domains] bounds real
    parallelism; [n] logical processes are work-queued onto the pool.
    [warmup] (default 0) first executes that many complete throwaway
    runs of the same cell — warming code paths, allocator and frequency
    scaling so pool cold-start stays out of the measured latencies — and
    reports their total cost in [warmup_ns].  [probe] (default false)
    runs the measured campaign on the instrumented backend, filling
    [reg_stats]; leave it off for baseline-gated benchmarks.
    @raise Invalid_argument if [n <= 0], [domains <= 0] or [warmup < 0].
    @raise Engine.Task_failed if a process body raised. *)

val decided : run -> int
(** Number of processes holding a name ([= n] for these algorithms). *)

val hot_registers : run -> reg_stat list
(** [reg_stats] ranked by total accesses (reads + writes), hottest
    first; [[]] when the run was not probed. *)

val check : run -> (unit, string) result
(** The paper's claims over the decision log: termination,
    exclusiveness, name bound, completion ([All_named]).  [Error msg]
    carries the same message format the conformance campaigns print. *)

val trace_doc : ?label:string -> run -> Exsel_obs.Trace_export.Native.doc
(** The run's flight record as a wall-clock trace document (default
    label ["<algo> n=<n> domains=<d> seed=<s>"]): feed it to
    {!Exsel_obs.Trace_export.Native.to_json} for the
    [exsel-native-trace/1] artifact or
    {!Exsel_obs.Trace_export.Native.chrome} for Perfetto. *)

val observe : Exsel_obs.Metrics.t -> run -> unit
(** Record the run into a registry, all labelled
    [algo=<algo>, backend=native]: per-process latencies into the
    [exsel_rename_latency_ns] histogram (clamped via {!ns_to_int});
    decided-vs-spawned as the separate [exsel_rename_decisions_total] /
    [exsel_rename_spawned_total] counters; [exsel_rename_wall_ns],
    [exsel_engine_spawn_ns] and [exsel_engine_join_ns] gauges;
    per-domain [exsel_domain_tasks_total] / [exsel_domain_busy_ns_total]
    counters labelled [domain=<w>]; [exsel_rename_warmup_ns] when warmup
    ran; and — for probed runs — per-register
    [exsel_register_reads_total] / [exsel_register_writes_total]
    counters labelled [register=<allocation name>]. *)
