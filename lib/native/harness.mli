(** Native rename campaigns: build an algorithm on {!Backend}, run one
    logical process per contender on the {!Engine} domain pool, record a
    decision log with wall-clock latencies, and check the paper's claims
    post hoc.

    The semantic gap to the simulator (DESIGN.md §12): there is no
    commit clock, so step budgets are not checked; there is no crash
    injection, so completion is always [All_named]; and the claim checks
    run after quiescence against the recorded log rather than inside the
    scheduler.  Exclusiveness and the name bounds are
    contention-independent, so they transfer unchanged. *)

type algo = Ma | Efficient | Adaptive

val algo_name : algo -> string
(** ["ma"], ["efficient"], ["adaptive"] — matches the conformance
    adapter ids. *)

val algo_of_string : string -> algo option

type run = {
  algo : string;
  n : int;  (** contenders (= the algorithm's k, or n for Adaptive) *)
  domains : int;
  seed : int;
  ids : int array;  (** original names, one per process *)
  names : int option array;  (** decision log, index-aligned with [ids] *)
  latency_ns : int64 array;  (** per-process wall-clock rename latency *)
  wall_ns : int64;  (** end-to-end wall clock of the engine run *)
  bound : int;  (** claimed exclusive upper bound on names *)
  registers : int;  (** atomic cells allocated *)
}

val run : algo:algo -> n:int -> domains:int -> seed:int -> unit -> run
(** Build and execute one native campaign.  [domains] bounds real
    parallelism; [n] logical processes are work-queued onto the pool.
    @raise Invalid_argument if [n <= 0] or [domains <= 0].
    @raise Engine.Task_failed if a process body raised. *)

val decided : run -> int
(** Number of processes holding a name ([= n] for these algorithms). *)

val check : run -> (unit, string) result
(** The paper's claims over the decision log: termination,
    exclusiveness, name bound, completion ([All_named]).  [Error msg]
    carries the same message format the conformance campaigns print. *)

val observe : Exsel_obs.Metrics.t -> run -> unit
(** Record the run into a registry: per-process latencies into the
    [exsel_rename_latency_ns] histogram and the decision count into
    [exsel_rename_decisions_total], both labelled
    [algo=<algo>, backend=native]. *)
