module R = Exsel_renaming
module Claims = Exsel_backend.Claims
module Metrics = Exsel_obs.Metrics
module Rng = Exsel_sim.Rng

module MA = R.Moir_anderson.Make (Backend)
module Eff = R.Efficient_rename.Make (Backend)
module Ada = R.Adaptive_rename.Make (Backend)

type algo = Ma | Efficient | Adaptive

let algo_name = function
  | Ma -> "ma"
  | Efficient -> "efficient"
  | Adaptive -> "adaptive"

let algo_of_string = function
  | "ma" -> Some Ma
  | "efficient" -> Some Efficient
  | "adaptive" -> Some Adaptive
  | _ -> None

type run = {
  algo : string;
  n : int;
  domains : int;
  seed : int;
  ids : int array;
  names : int option array;
  latency_ns : int64 array;
  wall_ns : int64;
  bound : int;
  registers : int;
}

(* Original names mirror the conformance adapters' conventions (strides
   keep them arbitrary — never usable as indices), so a native run and a
   sim run of the same algorithm face the same identifier stream. *)
let ids_for algo n =
  match algo with
  | Ma -> Array.init n (fun i -> 100 + (37 * i))
  | Efficient -> Array.init n (fun i -> 1000 + (37 * i))
  | Adaptive -> Array.init n (fun i -> 5000 + (101 * i))

(* Instance construction happens on the calling domain, before any worker
   starts; rng seeding matches the adapters so the sampled expanders are
   the ones the conformance campaigns certified. *)
let build algo ~seed ~n mem =
  match algo with
  | Ma ->
      let ma = MA.create mem ~name:"ma" ~side:n in
      ( (fun ~me -> MA.rename ma ~me),
        R.Moir_anderson.max_name_bound ~contenders:n )
  | Efficient ->
      let e = Eff.create ~rng:(Rng.create ~seed:(seed * 5)) mem ~name:"ef" ~k:n in
      ((fun ~me -> Eff.rename e ~me), Eff.names e)
  | Adaptive ->
      let a = Ada.create ~rng:(Rng.create ~seed:(seed * 17)) mem ~name:"ad" ~n in
      ( (fun ~me -> Some (Ada.rename a ~me)),
        R.Adaptive_rename.name_bound_for_contention ~k:n )

let run ~algo ~n ~domains ~seed () =
  if n <= 0 then invalid_arg "Harness.run: n must be positive";
  if domains <= 0 then invalid_arg "Harness.run: domains must be positive";
  let mem = Backend.create () in
  let rename, bound = build algo ~seed ~n mem in
  let ids = ids_for algo n in
  let names = Array.make n None in
  let latency_ns = Array.make n 0L in
  let engine = Engine.create () in
  Array.iteri
    (fun i id ->
      Engine.spawn engine
        ~name:(Printf.sprintf "p%d" i)
        (fun () ->
          (* each task owns slots [i] exclusively; reads happen after the
             engine joins, so plain array writes are safe *)
          let t0 = Monotonic_clock.now () in
          let r = rename ~me:id in
          let t1 = Monotonic_clock.now () in
          names.(i) <- r;
          latency_ns.(i) <- Int64.sub t1 t0))
    ids;
  let w0 = Monotonic_clock.now () in
  Engine.run engine ~domains;
  let w1 = Monotonic_clock.now () in
  {
    algo = algo_name algo;
    n;
    domains;
    seed;
    ids;
    names;
    latency_ns;
    wall_ns = Int64.sub w1 w0;
    bound;
    registers = Backend.registers mem;
  }

let decided r = Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 r.names

(* Post-hoc claim checking against the recorded decision log: same
   checker the conformance adapters run, minus the steps budget (no
   commit clock on real domains) and minus crash faults (domains are not
   crashed mid-flight; every task runs to completion). *)
let check r =
  let outcomes =
    Array.mapi
      (fun i o ->
        {
          Claims.name = Printf.sprintf "p%d" i;
          status = Claims.Done;
          result = o;
          steps = 0;
        })
      r.names
  in
  Claims.check ~completion:Claims.All_named ~k:r.n ~outcomes ~bound:r.bound ()

let observe reg r =
  let labels = [ ("algo", r.algo); ("backend", Backend.backend) ] in
  let h = Metrics.histogram reg "exsel_rename_latency_ns" ~labels in
  Array.iter (fun l -> Metrics.observe h (Int64.to_int l)) r.latency_ns;
  let c = Metrics.counter reg "exsel_rename_decisions_total" ~labels in
  Metrics.inc c (decided r)
