module R = Exsel_renaming
module Claims = Exsel_backend.Claims
module Metrics = Exsel_obs.Metrics
module Trace_export = Exsel_obs.Trace_export
module Rng = Exsel_sim.Rng

type algo = Ma | Efficient | Adaptive

let algo_name = function
  | Ma -> "ma"
  | Efficient -> "efficient"
  | Adaptive -> "adaptive"

let algo_of_string = function
  | "ma" -> Some Ma
  | "efficient" -> Some Efficient
  | "adaptive" -> Some Adaptive
  | _ -> None

type reg_stat = { rs_name : string; rs_reads : int; rs_writes : int }

type run = {
  algo : string;
  n : int;
  domains : int;
  seed : int;
  ids : int array;
  names : int option array;
  latency_ns : int64 array;
  wall_ns : int64;
  bound : int;
  registers : int;
  telemetry : Engine.telemetry;
  warmup : int;
  warmup_ns : int64;
  reg_stats : reg_stat list;
}

(* Wall-clock ns fit an OCaml int on 64-bit platforms, but Int64.to_int
   silently wraps where they do not — clamp instead (a saturated latency
   is still ordered correctly by every quantile). *)
let ns_to_int ns =
  if Int64.compare ns 0L < 0 then 0
  else if Int64.compare ns (Int64.of_int max_int) > 0 then max_int
  else Int64.to_int ns

(* Original names mirror the conformance adapters' conventions (strides
   keep them arbitrary — never usable as indices), so a native run and a
   sim run of the same algorithm face the same identifier stream. *)
let ids_for algo n =
  match algo with
  | Ma -> Array.init n (fun i -> 100 + (37 * i))
  | Efficient -> Array.init n (fun i -> 1000 + (37 * i))
  | Adaptive -> Array.init n (fun i -> 5000 + (101 * i))

module Probed = Probe_backend.Make (Backend)

(* Instance construction happens on the calling domain, before any worker
   starts; rng seeding matches the adapters so the sampled expanders are
   the ones the conformance campaigns certified.  The functor lets the
   same construction target the plain backend (the fast path bench
   baselines gate) and the probe-instrumented one (the CLI's
   observability surfaces). *)
module Algos (B : Exsel_backend.Intf.S) = struct
  module MA = R.Moir_anderson.Make (B)
  module Eff = R.Efficient_rename.Make (B)
  module Ada = R.Adaptive_rename.Make (B)

  let build algo ~seed ~n (mem : B.memory) =
    match algo with
    | Ma ->
        let ma = MA.create mem ~name:"ma" ~side:n in
        ( (fun ~me -> MA.rename ma ~me),
          R.Moir_anderson.max_name_bound ~contenders:n )
    | Efficient ->
        let e =
          Eff.create ~rng:(Rng.create ~seed:(seed * 5)) mem ~name:"ef" ~k:n
        in
        ((fun ~me -> Eff.rename e ~me), Eff.names e)
    | Adaptive ->
        let a =
          Ada.create ~rng:(Rng.create ~seed:(seed * 17)) mem ~name:"ad" ~n
        in
        ( (fun ~me -> Some (Ada.rename a ~me)),
          R.Adaptive_rename.name_bound_for_contention ~k:n )
end

module Plain = Algos (Backend)
module Probe = Algos (Probed)

(* One engine execution: spawn a task per id, run the pool, return the
   decision log, per-task latencies and the engine's flight record. *)
let drive ~rename ~ids ~domains =
  let n = Array.length ids in
  let names = Array.make n None in
  let latency_ns = Array.make n 0L in
  let engine = Engine.create () in
  Array.iteri
    (fun i id ->
      Engine.spawn engine
        ~name:(Printf.sprintf "p%d" i)
        (fun () ->
          (* each task owns slots [i] exclusively; reads happen after the
             engine joins, so plain array writes are safe *)
          let t0 = Monotonic_clock.now () in
          let r = rename ~me:id in
          let t1 = Monotonic_clock.now () in
          names.(i) <- r;
          latency_ns.(i) <- Int64.sub t1 t0))
    ids;
  Engine.run engine ~domains;
  let tl =
    match Engine.telemetry engine with
    | Some tl -> tl
    | None -> assert false (* run returned: telemetry is recorded *)
  in
  (names, latency_ns, tl)

let run_plain ~algo ~n ~domains ~seed ids =
  let mem = Backend.create () in
  let rename, bound = Plain.build algo ~seed ~n mem in
  let names, latency_ns, tl = drive ~rename ~ids ~domains in
  (names, latency_ns, tl, bound, Backend.registers mem, [])

let run_probed ~algo ~n ~domains ~seed ids =
  let mem = Probed.wrap (Backend.create ()) in
  let rename, bound = Probe.build algo ~seed ~n mem in
  let names, latency_ns, tl = drive ~rename ~ids ~domains in
  let stats =
    List.map
      (fun (name, reads, writes) ->
        { rs_name = name; rs_reads = reads; rs_writes = writes })
      (Probed.counts mem)
  in
  (names, latency_ns, tl, bound, Probed.registers mem, stats)

let run ?(warmup = 0) ?(probe = false) ~algo ~n ~domains ~seed () =
  if n <= 0 then invalid_arg "Harness.run: n must be positive";
  if domains <= 0 then invalid_arg "Harness.run: domains must be positive";
  if warmup < 0 then invalid_arg "Harness.run: warmup must be non-negative";
  let ids = ids_for algo n in
  (* Warmup runs are complete throwaway campaigns on the plain backend:
     they warm code paths, the allocator and CPU frequency scaling so
     pool cold-start stays out of the measured quantiles; their cost is
     reported separately, never mixed into the latencies. *)
  let warmup_ns =
    if warmup = 0 then 0L
    else begin
      let w0 = Monotonic_clock.now () in
      for _ = 1 to warmup do
        ignore (run_plain ~algo ~n ~domains ~seed ids)
      done;
      Int64.sub (Monotonic_clock.now ()) w0
    end
  in
  let names, latency_ns, tl, bound, registers, reg_stats =
    if probe then run_probed ~algo ~n ~domains ~seed ids
    else run_plain ~algo ~n ~domains ~seed ids
  in
  {
    algo = algo_name algo;
    n;
    domains;
    seed;
    ids;
    names;
    latency_ns;
    wall_ns = Engine.wall_ns tl;
    bound;
    registers;
    telemetry = tl;
    warmup;
    warmup_ns;
    reg_stats;
  }

let decided r = Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 r.names

let hot_registers r =
  List.sort
    (fun a b ->
      compare (b.rs_reads + b.rs_writes, b.rs_name) (a.rs_reads + a.rs_writes, a.rs_name))
    r.reg_stats

(* Post-hoc claim checking against the recorded decision log: same
   checker the conformance adapters run, minus the steps budget (no
   commit clock on real domains) and minus crash faults (domains are not
   crashed mid-flight; every task runs to completion). *)
let check r =
  let outcomes =
    Array.mapi
      (fun i o ->
        {
          Claims.name = Printf.sprintf "p%d" i;
          status = Claims.Done;
          result = o;
          steps = 0;
        })
      r.names
  in
  Claims.check ~completion:Claims.All_named ~k:r.n ~outcomes ~bound:r.bound ()

(* Flight record as a wall-clock trace document: every rename span
   attributed to its executing worker, timestamps rebased to the run
   start. *)
let trace_doc ?label r =
  let tl = r.telemetry in
  let rel ns = ns_to_int (Int64.sub ns tl.Engine.tl_start_ns) in
  let spans =
    Array.to_list
      (Array.map
         (fun (e : Engine.task_event) ->
           {
             Trace_export.Native.sp_track = e.Engine.te_worker;
             sp_name = e.Engine.te_name;
             sp_start_ns = rel e.Engine.te_start_ns;
             sp_stop_ns = rel e.Engine.te_stop_ns;
           })
         tl.Engine.tl_events)
  in
  {
    Trace_export.Native.nd_label =
      Some
        (match label with
        | Some l -> l
        | None ->
            Printf.sprintf "%s n=%d domains=%d seed=%d" r.algo r.n r.domains
              r.seed);
    nd_domains = tl.Engine.tl_domains;
    nd_spawn_ns = ns_to_int tl.Engine.tl_spawn_ns;
    nd_join_ns = ns_to_int tl.Engine.tl_join_ns;
    nd_wall_ns = ns_to_int (Engine.wall_ns tl);
    nd_spans = spans;
  }

let observe reg r =
  let labels = [ ("algo", r.algo); ("backend", Backend.backend) ] in
  let h = Metrics.histogram reg "exsel_rename_latency_ns" ~labels in
  Array.iter (fun l -> Metrics.observe h (ns_to_int l)) r.latency_ns;
  let c = Metrics.counter reg "exsel_rename_decisions" ~labels in
  Metrics.inc c (decided r);
  Metrics.inc (Metrics.counter reg "exsel_rename_spawned" ~labels) r.n;
  Metrics.max_gauge
    (Metrics.gauge reg "exsel_rename_wall_ns" ~labels)
    (ns_to_int r.wall_ns);
  let tl = r.telemetry in
  Metrics.max_gauge
    (Metrics.gauge reg "exsel_engine_spawn_ns" ~labels)
    (ns_to_int tl.Engine.tl_spawn_ns);
  Metrics.max_gauge
    (Metrics.gauge reg "exsel_engine_join_ns" ~labels)
    (ns_to_int tl.Engine.tl_join_ns);
  Array.iter
    (fun (w : Engine.worker_stat) ->
      let labels = ("domain", string_of_int w.Engine.ws_worker) :: labels in
      Metrics.inc
        (Metrics.counter reg "exsel_domain_tasks" ~labels)
        w.Engine.ws_tasks;
      Metrics.inc
        (Metrics.counter reg "exsel_domain_busy_ns" ~labels)
        (ns_to_int w.Engine.ws_busy_ns))
    tl.Engine.tl_workers;
  if r.warmup > 0 then
    Metrics.max_gauge
      (Metrics.gauge reg "exsel_rename_warmup_ns" ~labels)
      (ns_to_int r.warmup_ns);
  List.iter
    (fun s ->
      let labels = ("register", s.rs_name) :: labels in
      Metrics.inc
        (Metrics.counter reg "exsel_register_reads" ~labels)
        s.rs_reads;
      Metrics.inc
        (Metrics.counter reg "exsel_register_writes" ~labels)
        s.rs_writes)
    r.reg_stats
