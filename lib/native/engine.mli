(** Domain-pool executor for native logical processes.

    The native backend maps the paper's asynchronous processes onto a
    bounded pool of OCaml 5 domains: spawned bodies go into a queue, and
    [run ~domains:d] drains it with [min d tasks] domains (the calling
    domain included), so the logical process count can exceed the core
    count.  Within one domain tasks run to completion sequentially —
    there is no preemption inside a task, only true parallelism between
    domains, which is exactly the asynchronous-adversary regime the
    algorithms must tolerate (and strictly weaker than the simulator's
    per-step interleaving).

    Engines are one-shot: spawn, run once, inspect.

    {b Flight recorder} (DESIGN.md §13): every run records, per task, the
    executing worker (worker [0] is the calling domain, helpers are
    [1 .. domains-1]) and monotonic start/stop nanoseconds, plus the
    engine's own spawn and join overhead.  Recording costs two clock
    reads per task and is always on; {!telemetry} exposes the record
    after {!run} returns (including when it raises {!Task_failed}). *)

type t

exception Task_failed of string * exn
(** Re-raised by {!run} after the queue drains: the name of the first
    task that raised, with the original exception. *)

type task_event = {
  te_index : int;  (** spawn-order index of the task *)
  te_name : string;
  te_worker : int;  (** worker that executed it, [0 .. tl_domains-1] *)
  te_start_ns : int64;  (** monotonic clock at task start *)
  te_stop_ns : int64;  (** monotonic clock at task end *)
}

type worker_stat = {
  ws_worker : int;
  ws_tasks : int;  (** tasks this worker drained *)
  ws_busy_ns : int64;  (** summed task wall time on this worker *)
}

type telemetry = {
  tl_domains : int;  (** actual workers used, [min domains tasks] (>= 1) *)
  tl_start_ns : int64;  (** monotonic clock entering {!run} *)
  tl_stop_ns : int64;  (** monotonic clock after every join *)
  tl_spawn_ns : int64;  (** time spent in [Domain.spawn] for the helpers *)
  tl_join_ns : int64;
      (** time from the calling domain draining its last task to the last
          helper joined *)
  tl_events : task_event array;  (** one per task, in spawn order *)
  tl_workers : worker_stat array;  (** one per worker, in worker order *)
}

val create : unit -> t

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Enqueue a task.  @raise Invalid_argument after {!run}. *)

val tasks : t -> int
(** Number of tasks spawned so far. *)

val telemetry : t -> telemetry option
(** The flight record of the completed run; [None] before {!run}. *)

val wall_ns : telemetry -> int64
(** End-to-end wall clock of the run, [tl_stop_ns - tl_start_ns]. *)

val busy_ns : telemetry -> int64
(** Summed busy time across all workers. *)

val utilization : telemetry -> float
(** [busy_ns / (wall_ns * tl_domains)] in [0, 1]: the fraction of the
    pool's capacity spent inside task bodies (the remainder is spawn and
    join overhead plus queue idling); [0] on a zero-length run. *)

val run : t -> domains:int -> unit
(** Execute every task.  With [domains = 1] tasks run sequentially in
    spawn order on the calling domain (deterministic); with more, tasks
    are handed out in spawn order but interleave in real time.  Returns
    after all tasks finish.
    @raise Task_failed if any task raised (first failure wins).
    @raise Invalid_argument if [domains <= 0] or the engine already ran. *)
