(** Domain-pool executor for native logical processes.

    The native backend maps the paper's asynchronous processes onto a
    bounded pool of OCaml 5 domains: spawned bodies go into a queue, and
    [run ~domains:d] drains it with [min d tasks] domains (the calling
    domain included), so the logical process count can exceed the core
    count.  Within one domain tasks run to completion sequentially —
    there is no preemption inside a task, only true parallelism between
    domains, which is exactly the asynchronous-adversary regime the
    algorithms must tolerate (and strictly weaker than the simulator's
    per-step interleaving).

    Engines are one-shot: spawn, run once, inspect. *)

type t

exception Task_failed of string * exn
(** Re-raised by {!run} after the queue drains: the name of the first
    task that raised, with the original exception. *)

val create : unit -> t

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Enqueue a task.  @raise Invalid_argument after {!run}. *)

val tasks : t -> int
(** Number of tasks spawned so far. *)

val run : t -> domains:int -> unit
(** Execute every task.  With [domains = 1] tasks run sequentially in
    spawn order on the calling domain (deterministic); with more, tasks
    are handed out in spawn order but interleave in real time.  Returns
    after all tasks finish.
    @raise Task_failed if any task raised (first failure wins).
    @raise Invalid_argument if [domains <= 0] or the engine already ran. *)
