type task = { name : string; body : unit -> unit }

type state = Fresh | Running | Finished

type task_event = {
  te_index : int;
  te_name : string;
  te_worker : int;
  te_start_ns : int64;
  te_stop_ns : int64;
}

type worker_stat = { ws_worker : int; ws_tasks : int; ws_busy_ns : int64 }

type telemetry = {
  tl_domains : int;
  tl_start_ns : int64;
  tl_stop_ns : int64;
  tl_spawn_ns : int64;
  tl_join_ns : int64;
  tl_events : task_event array;
  tl_workers : worker_stat array;
}

type t = {
  mutable tasks : task list;  (* reversed spawn order *)
  mutable count : int;
  mutable state : state;
  mutable telemetry : telemetry option;
}

exception Task_failed of string * exn

let create () = { tasks = []; count = 0; state = Fresh; telemetry = None }

let spawn t ~name body =
  if t.state <> Fresh then invalid_arg "Engine.spawn: engine already run";
  t.tasks <- { name; body } :: t.tasks;
  t.count <- t.count + 1

let tasks t = t.count
let telemetry t = t.telemetry

let wall_ns tl = Int64.sub tl.tl_stop_ns tl.tl_start_ns

let busy_ns tl =
  Array.fold_left (fun acc w -> Int64.add acc w.ws_busy_ns) 0L tl.tl_workers

let utilization tl =
  let wall = Int64.to_float (wall_ns tl) *. float_of_int tl.tl_domains in
  if wall <= 0.0 then 0.0 else Int64.to_float (busy_ns tl) /. wall

(* Work-queue execution: a shared cursor hands tasks out in spawn order;
   each domain loops until the queue drains.  With [domains = 1] no domain
   is spawned and the tasks run sequentially in spawn order on the calling
   domain — the deterministic mode the cross-validation tests pin down.
   The first failing task wins the failure CAS; the queue still drains so
   every task runs exactly once before the exception is re-raised.

   The flight recorder rides along: each slot of [worker_of]/[start_ns]/
   [stop_ns] is written by exactly the one worker that claimed the task,
   and read only after every helper is joined (a happens-before edge), so
   plain arrays suffice.  The overhead per task is two monotonic clock
   reads — negligible next to a rename — so recording is always on. *)
let run t ~domains =
  if domains <= 0 then invalid_arg "Engine.run: domains must be positive";
  if t.state <> Fresh then invalid_arg "Engine.run: engine already run";
  t.state <- Running;
  let tasks = Array.of_list (List.rev t.tasks) in
  let n = Array.length tasks in
  let cursor = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker_of = Array.make n (-1) in
  let start_ns = Array.make n 0L in
  let stop_ns = Array.make n 0L in
  let worker w () =
    let rec loop () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        worker_of.(i) <- w;
        start_ns.(i) <- Monotonic_clock.now ();
        (try tasks.(i).body ()
         with e ->
           ignore
             (Atomic.compare_and_set failure None (Some (tasks.(i).name, e))));
        stop_ns.(i) <- Monotonic_clock.now ();
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 (min domains n) in
  let t_run0 = Monotonic_clock.now () in
  let helpers = Array.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  let t_spawned = Monotonic_clock.now () in
  worker 0 ();
  let t_drained = Monotonic_clock.now () in
  Array.iter Domain.join helpers;
  let t_run1 = Monotonic_clock.now () in
  t.state <- Finished;
  let events =
    Array.init n (fun i ->
        {
          te_index = i;
          te_name = tasks.(i).name;
          te_worker = worker_of.(i);
          te_start_ns = start_ns.(i);
          te_stop_ns = stop_ns.(i);
        })
  in
  let stats =
    Array.init workers (fun w ->
        let tasks_run = ref 0 and busy = ref 0L in
        Array.iter
          (fun e ->
            if e.te_worker = w then begin
              incr tasks_run;
              busy := Int64.add !busy (Int64.sub e.te_stop_ns e.te_start_ns)
            end)
          events;
        { ws_worker = w; ws_tasks = !tasks_run; ws_busy_ns = !busy })
  in
  t.telemetry <-
    Some
      {
        tl_domains = workers;
        tl_start_ns = t_run0;
        tl_stop_ns = t_run1;
        tl_spawn_ns = Int64.sub t_spawned t_run0;
        tl_join_ns = Int64.sub t_run1 t_drained;
        tl_events = events;
        tl_workers = stats;
      };
  match Atomic.get failure with
  | Some (name, e) -> raise (Task_failed (name, e))
  | None -> ()
