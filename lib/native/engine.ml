type task = { name : string; body : unit -> unit }

type state = Fresh | Running | Finished

type t = {
  mutable tasks : task list;  (* reversed spawn order *)
  mutable count : int;
  mutable state : state;
}

exception Task_failed of string * exn

let create () = { tasks = []; count = 0; state = Fresh }

let spawn t ~name body =
  if t.state <> Fresh then invalid_arg "Engine.spawn: engine already run";
  t.tasks <- { name; body } :: t.tasks;
  t.count <- t.count + 1

let tasks t = t.count

(* Work-queue execution: a shared cursor hands tasks out in spawn order;
   each domain loops until the queue drains.  With [domains = 1] no domain
   is spawned and the tasks run sequentially in spawn order on the calling
   domain — the deterministic mode the cross-validation tests pin down.
   The first failing task wins the failure CAS; the queue still drains so
   every task runs exactly once before the exception is re-raised. *)
let run t ~domains =
  if domains <= 0 then invalid_arg "Engine.run: domains must be positive";
  if t.state <> Fresh then invalid_arg "Engine.run: engine already run";
  t.state <- Running;
  let tasks = Array.of_list (List.rev t.tasks) in
  let n = Array.length tasks in
  let cursor = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        (try tasks.(i).body ()
         with e ->
           ignore
             (Atomic.compare_and_set failure None (Some (tasks.(i).name, e))));
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    Array.init (max 0 (min domains n - 1)) (fun _ -> Domain.spawn worker)
  in
  worker ();
  Array.iter Domain.join helpers;
  t.state <- Finished;
  match Atomic.get failure with
  | Some (name, e) -> raise (Task_failed (name, e))
  | None -> ()
