(** Validators for the streaming observability artifacts.

    CI used to shell out to python to sanity-check JSON artifacts; the
    documents introduced with the metrics subsystem ([exsel-events/1]
    NDJSON streams, OpenMetrics text, embedded [exsel-metrics/1]) are
    validated here instead, in-toolchain, so [dune runtest] and the CI
    steps exercise the very same checks. *)

val events : string -> (unit, string) result
(** Validate an [exsel-events/1] NDJSON stream (whole-file contents):
    every non-empty line parses as a JSON object with a string [event]
    field; the first line is the [start] header carrying
    [schema = "exsel-events/1"]; the last line is the [done] footer.
    Returns a line-numbered error message otherwise. *)

val openmetrics : string -> (unit, string) result
(** Validate an OpenMetrics text exposition: every line is a
    [# TYPE]/[# HELP]/[# UNIT] comment or a [name{labels} value] sample
    whose family was declared by a preceding [# TYPE]; counter samples
    carry the [_total] suffix; histogram series have ascending
    [le] buckets with non-decreasing cumulative counts, a [le="+Inf"]
    bucket agreeing with [_count], and matching [_sum]/[_count] samples;
    the final line is [# EOF]. *)

val metrics_doc : Exsel_obs.Json.t -> (unit, string) result
(** Validate the shape of an [exsel-metrics/1] document (as embedded in
    [exsel-bench/1] and [exsel-conformance/1] reports): schema tag,
    [counters]/[gauges] entries with [name]/[value], [histograms]
    entries whose quantiles are monotone ([p50 <= p90 <= p99 <= p999 <=
    max]) and whose cumulative [buckets] end at [count]. *)

val native_trace : Exsel_obs.Json.t -> (unit, string) result
(** Validate an [exsel-native-trace/1] document (the native engine's
    wall-clock flight record): schema and [clock = "wall_ns"] tags;
    non-negative [spawn_ns]/[join_ns]/[wall_ns]; exactly one worker row
    per domain, in worker order, whose task counts sum to [tasks]; and
    one span per task with a non-empty name, a worker index below
    [domains], monotone [start_ns <= stop_ns] within the run
    window, and no overlap between consecutive spans of one worker (a
    worker drains its queue sequentially). *)

val bench_p7 : Exsel_obs.Json.t -> (unit, string) result
(** Validate the P7 native-bench section of an [exsel-bench/1] document:
    schema tag; an experiment with id [P7] whose table title mentions
    the native backend and whose header starts
    [algo, n, domains, decided]; every row fully decided
    ([decided = n]); at least two distinct domain counts per
    [(algo, n)] cell; rows for [ma], [efficient] and [adaptive]; and an
    embedded [exsel-metrics/1] registry (checked with {!metrics_doc})
    carrying an [exsel_rename_latency_ns] histogram labelled
    [backend="native"]. *)

val service : Exsel_obs.Json.t -> (unit, string) result
(** Validate an [exsel-service/1] churn-campaign report: schema and
    backend tags; non-empty [cells] whose [ok] flag agrees with the
    per-cell violation list, with [releases <= acquires] and one shard
    row per shard obeying the router invariants
    ([held_max <= occupancy_max <= cap], [admitted <= cap],
    [epochs >= 1]); a top-level violation count matching the cells; and
    an embedded [exsel-metrics/1] registry (checked with {!metrics_doc})
    carrying acquire-latency histograms in the backend's unit and
    [exsel_shard_occupancy] gauges. *)

val service_docs :
  design:string ->
  experiments:string ->
  algorithms:string ->
  readme:string ->
  (unit, string) result
(** Check the service layer's documentation cross-references: DESIGN.md
    §14 with its generation-counter and shard-router anchors,
    EXPERIMENTS.md's "A service under churn" walkthrough, the long-lived
    claim rows in doc/ALGORITHMS.md, and the README's [exsel_service] /
    [exsel_cli service] mentions.  Each argument is the file's whole
    contents. *)

val workload : Exsel_obs.Json.t -> (unit, string) result
(** Validate an [exsel-workload/1] open-loop traffic report: schema and
    backend tags; non-empty [cells] whose [ok] flag agrees with the
    per-cell violation list and whose session funnel is conserved
    ([admitted + rejected = arrivals],
    [releases <= acquires <= joins <= admitted]); a top-level violation
    count matching the cells; and an embedded [exsel-metrics/1] registry
    (checked with {!metrics_doc}) carrying
    [exsel_workload_acquire_latency_*] histograms in the backend's unit
    and the [exsel_workload_arrivals] counter. *)

val adversary_docs :
  design:string -> experiments:string -> readme:string ->
  (unit, string) result
(** Check the adversary-DSL and open-loop documentation
    cross-references: DESIGN.md §15 with its grammar,
    write-contention-budget and legacy-equivalence anchors,
    EXPERIMENTS.md's "Open-loop traffic" walkthrough, and the README's
    [exsel_cli workload] / adversary DSL mentions. *)
