module Json = Exsel_obs.Json

exception Parse of string

let parse s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then s.[!pos] else raise (Parse "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    then (
      advance ();
      skip_ws ())
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise (Parse (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let literal word v =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else raise (Parse ("bad literal at " ^ string_of_int !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
          advance ();
          Buffer.contents buf
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              (* Decode the UTF-16 escape (pairing surrogates) and emit
                 UTF-8, matching the writer's raw-byte passthrough. *)
              let code_unit () =
                if !pos + 4 >= String.length s then
                  raise (Parse ("truncated \\u escape at " ^ string_of_int !pos));
                let hex = String.sub s (!pos + 1) 4 in
                pos := !pos + 4;
                match int_of_string_opt ("0x" ^ hex) with
                | Some u -> u
                | None ->
                    raise (Parse ("bad \\u escape at " ^ string_of_int !pos))
              in
              let u = code_unit () in
              let cp =
                if
                  u >= 0xD800 && u <= 0xDBFF
                  && !pos + 2 < String.length s
                  && s.[!pos + 1] = '\\'
                  && s.[!pos + 2] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = code_unit () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + (((u - 0xD800) lsl 10) lor (lo - 0xDC00))
                  else 0xFFFD
                end
                else u
              in
              Buffer.add_utf_8_uchar buf
                (if Uchar.is_valid cp then Uchar.of_int cp else Uchar.rep)
          | c -> raise (Parse (Printf.sprintf "bad escape %c" c)));
          advance ();
          go ()
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (
          advance ();
          Json.Obj [])
        else
          let rec fields acc =
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                fields ((key, v) :: acc)
            | '}' ->
                advance ();
                Json.Obj (List.rev ((key, v) :: acc))
            | c -> raise (Parse (Printf.sprintf "bad obj char %c" c))
          in
          fields []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (
          advance ();
          Json.List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                items (v :: acc)
            | ']' ->
                advance ();
                Json.List (List.rev (v :: acc))
            | c -> raise (Parse (Printf.sprintf "bad list char %c" c))
          in
          items []
    | '"' -> Json.String (parse_string ())
    | 't' -> literal "true" (Json.Bool true)
    | 'f' -> literal "false" (Json.Bool false)
    | 'n' -> literal "null" Json.Null
    | _ ->
        let start = !pos in
        let rec scan () =
          if
            !pos < len
            && match s.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false
          then (
            advance ();
            scan ())
        in
        scan ();
        let tok = String.sub s start (!pos - start) in
        (match int_of_string_opt tok with
        | Some i -> Json.Int i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> Json.Float f
            | None -> raise (Parse (Printf.sprintf "bad token %S" tok))))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then raise (Parse "trailing input");
  v

let parse_ndjson s =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) -> line <> "")
  |> List.map (fun (lineno, line) ->
         try parse line
         with Parse msg ->
           raise (Parse (Printf.sprintf "line %d: %s" lineno msg)))

let roundtrip v = parse (Json.to_string v)

let get_int key j =
  match Json.member key j with
  | Some (Json.Int i) -> i
  | _ -> raise (Parse (Printf.sprintf "missing int field %S" key))

let get_string key j =
  match Json.member key j with
  | Some (Json.String s) -> s
  | _ -> raise (Parse (Printf.sprintf "missing string field %S" key))

let get_list key j =
  match Json.member key j with
  | Some (Json.List l) -> l
  | _ -> raise (Parse (Printf.sprintf "missing list field %S" key))

let get_bool key j =
  match Json.member key j with
  | Some (Json.Bool b) -> b
  | _ -> raise (Parse (Printf.sprintf "missing bool field %S" key))

let get_obj key j =
  match Json.member key j with
  | Some (Json.Obj fields) -> fields
  | _ -> raise (Parse (Printf.sprintf "missing object field %S" key))
