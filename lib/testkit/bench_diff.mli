(** Perf trend diffing over two [exsel-bench/1] documents.

    [tools/bench_diff.exe] is a thin shell around this module so the
    comparison logic is unit-testable: parse two bench reports, walk
    their experiment tables and embedded [exsel-metrics/1] registries,
    and classify the differences.

    Table cells are machine-dependent (throughput, wall-clock), so cell
    deltas are {e reported} but never gate.  The gated signals are
    structural and statistical: a suite present in the old document but
    missing from the new one, a histogram that disappeared, or a latency
    quantile ([p50]/[p90]/[p99]/[p999]) that grew beyond the relative
    threshold.  Diffing a document against itself always yields zero
    regressions — the self-diff property CI smoke-tests. *)

type delta = {
  d_key : string;  (** ["\[row\] column"] or ["hist_key pXX"] *)
  d_old : float;
  d_new : float;
}

type t = {
  threshold : float;
  suites : (string * delta list) list;
      (** per-suite numeric cell deltas, index-matched rows *)
  quantiles : delta list;  (** changed histogram quantiles *)
  notes : string list;
      (** informational: new suites, row-count changes (capped runs) *)
  regressions : string list;
      (** gating: missing suites, missing histograms, quantiles beyond
          the threshold *)
}

val regressed : t -> bool
(** [regressions <> []] — the exit-1 condition of the CLI wrapper. *)

val diff :
  ?threshold:float ->
  old_doc:Exsel_obs.Json.t ->
  new_doc:Exsel_obs.Json.t ->
  unit ->
  (t, string) result
(** Compare two parsed [exsel-bench/1] documents.  [threshold] (default
    [0.25]) is the relative growth a histogram quantile may show before
    it counts as a regression ([new > old * (1 + threshold)]).
    [Error _] means a document is not an [exsel-bench/1] report at all
    (wrong schema, no experiments array) — the CLI maps that to the
    usage exit code, not to "regression". *)

val render : t -> string
(** Human-readable multi-line summary: notes, per-suite cell deltas,
    changed quantiles, then either [no regressions] or one
    [REGRESSION: ...] line each. *)
