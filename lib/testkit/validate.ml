module Json = Exsel_obs.Json

let ( let* ) = Result.bind

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* exsel-events/1 (NDJSON)                                             *)
(* ------------------------------------------------------------------ *)

let events contents =
  match Json_parse.parse_ndjson contents with
  | exception Json_parse.Parse msg -> errf "events: %s" msg
  | [] -> Error "events: empty stream"
  | lines ->
      let event_of lineno = function
        | Json.Obj _ as j -> (
            match Json.member "event" j with
            | Some (Json.String e) -> Ok e
            | _ -> errf "events: line %d has no string \"event\" field" lineno)
        | _ -> errf "events: line %d is not an object" lineno
      in
      let rec check lineno = function
        | [] -> Ok ()
        | [ last ] -> (
            let* e = event_of lineno last in
            if e = "done" then Ok ()
            else errf "events: last line is %S, expected \"done\"" e)
        | j :: rest ->
            let* _ = event_of lineno j in
            check (lineno + 1) rest
      in
      let first = List.hd lines in
      let* e = event_of 1 first in
      if e <> "start" then errf "events: first line is %S, expected \"start\"" e
      else if Json.member "schema" first <> Some (Json.String "exsel-events/1")
      then Error "events: start line lacks schema \"exsel-events/1\""
      else check 2 (List.tl lines)

(* ------------------------------------------------------------------ *)
(* OpenMetrics text format                                             *)
(* ------------------------------------------------------------------ *)

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

(* name{k="v",...} value — returns (name, labels, value). *)
let parse_sample line =
  let len = String.length line in
  let pos = ref 0 in
  while !pos < len && is_name_char line.[!pos] do
    incr pos
  done;
  if !pos = 0 then errf "bad metric name in %S" line
  else begin
    let name = String.sub line 0 !pos in
    let labels = ref [] in
    let* () =
      if !pos < len && line.[!pos] = '{' then begin
        incr pos;
        let rec parse_labels () =
          if !pos >= len then errf "unterminated label set in %S" line
          else if line.[!pos] = '}' then begin
            incr pos;
            Ok ()
          end
          else begin
            let start = !pos in
            while !pos < len && is_name_char line.[!pos] do
              incr pos
            done;
            let key = String.sub line start (!pos - start) in
            if key = "" || !pos + 1 >= len || line.[!pos] <> '='
               || line.[!pos + 1] <> '"'
            then errf "bad label in %S" line
            else begin
              pos := !pos + 2;
              let buf = Buffer.create 16 in
              let rec value () =
                if !pos >= len then errf "unterminated label value in %S" line
                else
                  match line.[!pos] with
                  | '"' ->
                      incr pos;
                      Ok (Buffer.contents buf)
                  | '\\' when !pos + 1 < len ->
                      (match line.[!pos + 1] with
                      | 'n' -> Buffer.add_char buf '\n'
                      | c -> Buffer.add_char buf c);
                      pos := !pos + 2;
                      value ()
                  | c ->
                      Buffer.add_char buf c;
                      incr pos;
                      value ()
              in
              let* v = value () in
              labels := (key, v) :: !labels;
              if !pos < len && line.[!pos] = ',' then begin
                incr pos;
                parse_labels ()
              end
              else parse_labels ()
            end
          end
        in
        parse_labels ()
      end
      else Ok ()
    in
    if !pos >= len || line.[!pos] <> ' ' then
      errf "missing value separator in %S" line
    else begin
      let v = String.sub line (!pos + 1) (len - !pos - 1) in
      let value =
        if v = "+Inf" then Some infinity else float_of_string_opt v
      in
      match value with
      | None -> errf "bad sample value %S in %S" v line
      | Some f -> Ok (name, List.rev !labels, f)
    end
  end

type hist_acc = {
  mutable buckets : (float * float) list; (* (le, cumulative), reversed *)
  mutable sum : float option;
  mutable count : float option;
}

let openmetrics contents =
  let lines =
    String.split_on_char '\n' contents |> List.filter (fun l -> l <> "")
  in
  match List.rev lines with
  | [] -> Error "openmetrics: empty exposition"
  | last :: _ when last <> "# EOF" ->
      errf "openmetrics: last line is %S, expected \"# EOF\"" last
  | _ :: body_rev ->
      let body = List.rev body_rev in
      let types = Hashtbl.create 16 in
      let hists : (string * (string * string) list, hist_acc) Hashtbl.t =
        Hashtbl.create 16
      in
      let strip name suffix =
        if String.length name > String.length suffix
           && String.sub name
                (String.length name - String.length suffix)
                (String.length suffix)
              = suffix
        then
          Some (String.sub name 0 (String.length name - String.length suffix))
        else None
      in
      let sample name labels value =
        let declared n = Hashtbl.find_opt types n in
        let fail_undeclared () =
          errf "openmetrics: sample %S precedes its # TYPE declaration" name
        in
        match declared name with
        | Some "gauge" | Some "counter" (* bare counter: non-suffixed *) ->
            Ok ()
        | Some kind -> errf "openmetrics: %S sampled as bare %s" name kind
        | None -> (
            match strip name "_total" with
            | Some base when declared base = Some "counter" -> Ok ()
            | _ -> (
                let hist_part suffix =
                  match strip name suffix with
                  | Some base when declared base = Some "histogram" -> Some base
                  | _ -> None
                in
                match hist_part "_bucket" with
                | Some base ->
                    let key =
                      ( base,
                        List.filter (fun (k, _) -> k <> "le") labels
                        |> List.sort compare )
                    in
                    let le =
                      match List.assoc_opt "le" labels with
                      | Some "+Inf" -> Some infinity
                      | Some v -> float_of_string_opt v
                      | None -> None
                    in
                    let acc =
                      match Hashtbl.find_opt hists key with
                      | Some a -> a
                      | None ->
                          let a = { buckets = []; sum = None; count = None } in
                          Hashtbl.replace hists key a;
                          a
                    in
                    (match le with
                    | None ->
                        errf "openmetrics: %S bucket lacks a float le label"
                          base
                    | Some le ->
                        acc.buckets <- (le, value) :: acc.buckets;
                        Ok ())
                | None -> (
                    match (hist_part "_sum", hist_part "_count") with
                    | Some base, _ ->
                        let key = (base, List.sort compare labels) in
                        (match Hashtbl.find_opt hists key with
                        | Some a ->
                            a.sum <- Some value;
                            Ok ()
                        | None ->
                            errf "openmetrics: %S_sum precedes its buckets"
                              base)
                    | None, Some base ->
                        let key = (base, List.sort compare labels) in
                        (match Hashtbl.find_opt hists key with
                        | Some a ->
                            a.count <- Some value;
                            Ok ()
                        | None ->
                            errf "openmetrics: %S_count precedes its buckets"
                              base)
                    | None, None -> fail_undeclared ())))
      in
      let handle line =
        if String.length line > 0 && line.[0] = '#' then
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ kind ]
            when List.mem kind [ "counter"; "gauge"; "histogram" ] ->
              if Hashtbl.mem types name then
                errf "openmetrics: duplicate # TYPE for %S" name
              else begin
                Hashtbl.replace types name kind;
                Ok ()
              end
          | "#" :: "TYPE" :: _ -> errf "openmetrics: bad TYPE line %S" line
          | "#" :: ("HELP" | "UNIT") :: _ -> Ok ()
          | _ -> errf "openmetrics: unexpected comment %S" line
        else
          let* name, labels, value = parse_sample line in
          sample name labels value
      in
      let* () =
        List.fold_left
          (fun acc line ->
            let* () = acc in
            handle line)
          (Ok ()) body
      in
      Hashtbl.fold
        (fun (base, _labels) acc res ->
          let* () = res in
          let buckets = List.rev acc.buckets in
          let rec monotone = function
            | (le1, c1) :: ((le2, c2) :: _ as rest) ->
                if le1 >= le2 then
                  errf "openmetrics: %S buckets not ascending by le" base
                else if c1 > c2 then
                  errf "openmetrics: %S cumulative counts decrease" base
                else monotone rest
            | _ -> Ok ()
          in
          let* () = monotone buckets in
          match (List.rev buckets, acc.sum, acc.count) with
          | [], _, _ -> errf "openmetrics: %S has no buckets" base
          | (le, c) :: _, Some _, Some count ->
              if le <> infinity then
                errf "openmetrics: %S lacks a le=\"+Inf\" bucket" base
              else if c <> count then
                errf "openmetrics: %S +Inf bucket %g disagrees with _count %g"
                  base c count
              else Ok ()
          | _, None, _ -> errf "openmetrics: %S lacks _sum" base
          | _, _, None -> errf "openmetrics: %S lacks _count" base)
        hists (Ok ())

(* ------------------------------------------------------------------ *)
(* exsel-metrics/1 (embedded JSON document)                            *)
(* ------------------------------------------------------------------ *)

let metrics_doc j =
  let scalar what entry =
    match (Json.member "name" entry, Json.member "value" entry) with
    | Some (Json.String _), Some (Json.Int _) -> Ok ()
    | _ -> errf "metrics: malformed %s entry" what
  in
  let histogram entry =
    let num k =
      match Json.member k entry with
      | Some (Json.Int i) -> Ok i
      | _ -> errf "metrics: histogram lacks int %S" k
    in
    let* count = num "count" in
    let* p50 = num "p50" in
    let* p90 = num "p90" in
    let* p99 = num "p99" in
    let* p999 = num "p999" in
    let* hmax = num "max" in
    if not (p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= hmax) then
      Error "metrics: quantiles not monotone"
    else
      match Json.member "buckets" entry with
      | Some (Json.List rows) -> (
          let cum =
            List.fold_left
              (fun acc row ->
                match (acc, row) with
                | Error _, _ -> acc
                | Ok prev, Json.List [ Json.Int _le; Json.Int c ] ->
                    if c < prev then Error "metrics: buckets not cumulative"
                    else Ok c
                | Ok _, _ -> Error "metrics: malformed bucket row")
              (Ok 0) rows
          in
          match cum with
          | Error e -> Error e
          | Ok total when total <> count ->
              errf "metrics: buckets end at %d, count is %d" total count
          | Ok _ -> Ok ())
      | _ -> Error "metrics: histogram lacks buckets"
  in
  match Json.member "schema" j with
  | Some (Json.String "exsel-metrics/1") ->
      let each what f =
        match Json.member what j with
        | Some (Json.List entries) ->
            List.fold_left
              (fun acc e ->
                let* () = acc in
                f e)
              (Ok ()) entries
        | _ -> errf "metrics: missing %s array" what
      in
      let* () = each "counters" (scalar "counter") in
      let* () = each "gauges" (scalar "gauge") in
      each "histograms" histogram
  | _ -> Error "metrics: missing schema \"exsel-metrics/1\""

(* ------------------------------------------------------------------ *)
(* exsel-native-trace/1 (wall-clock flight record)                     *)
(* ------------------------------------------------------------------ *)

let native_trace j =
  let int_field what obj k =
    match Json.member k obj with
    | Some (Json.Int i) -> Ok i
    | _ -> errf "native-trace: %s lacks int %S" what k
  in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String "exsel-native-trace/1") -> Ok ()
    | _ -> Error "native-trace: missing schema \"exsel-native-trace/1\""
  in
  let* () =
    match Json.member "clock" j with
    | Some (Json.String "wall_ns") -> Ok ()
    | _ -> Error "native-trace: clock must be \"wall_ns\""
  in
  let* domains = int_field "document" j "domains" in
  let* () =
    if domains < 1 then errf "native-trace: domains %d < 1" domains else Ok ()
  in
  let* tasks = int_field "document" j "tasks" in
  let* spawn_ns = int_field "document" j "spawn_ns" in
  let* join_ns = int_field "document" j "join_ns" in
  let* wall_ns = int_field "document" j "wall_ns" in
  let* () =
    if spawn_ns < 0 || join_ns < 0 || wall_ns < 0 then
      Error "native-trace: negative overhead or wall clock"
    else Ok ()
  in
  (* one worker row per domain, in worker order, task counts adding up *)
  let* workers =
    match Json.member "workers" j with
    | Some (Json.List ws) -> Ok ws
    | _ -> Error "native-trace: missing workers array"
  in
  let* () =
    if List.length workers <> domains then
      errf "native-trace: %d worker rows for %d domains" (List.length workers)
        domains
    else Ok ()
  in
  let* worker_tasks =
    List.fold_left
      (fun acc (i, w) ->
        let* total = acc in
        let* id = int_field "worker row" w "worker" in
        let* t = int_field "worker row" w "tasks" in
        let* busy = int_field "worker row" w "busy_ns" in
        if id <> i then errf "native-trace: worker row %d has id %d" i id
        else if t < 0 || busy < 0 then
          errf "native-trace: worker %d has negative tasks or busy_ns" i
        else Ok (total + t))
      (Ok 0)
      (List.mapi (fun i w -> (i, w)) workers)
  in
  let* () =
    if worker_tasks <> tasks then
      errf "native-trace: worker task counts sum to %d, tasks is %d"
        worker_tasks tasks
    else Ok ()
  in
  (* spans: named, attributed to a real worker, inside the run window,
     and monotone per worker (a worker drains its queue sequentially) *)
  let* spans =
    match Json.member "spans" j with
    | Some (Json.List ss) -> Ok ss
    | _ -> Error "native-trace: missing spans array"
  in
  let* () =
    if List.length spans <> tasks then
      errf "native-trace: %d spans for %d tasks" (List.length spans) tasks
    else Ok ()
  in
  let last_stop = Array.make domains (-1) in
  List.fold_left
    (fun acc s ->
      let* () = acc in
      let* name =
        match Json.member "name" s with
        | Some (Json.String n) when n <> "" -> Ok n
        | _ -> Error "native-trace: span lacks a non-empty name"
      in
      let* w = int_field "span" s "worker" in
      let* start = int_field "span" s "start_ns" in
      let* stop = int_field "span" s "stop_ns" in
      if w < 0 || w >= domains then
        errf "native-trace: span %S on worker %d outside [0, %d)" name w domains
      else if start < 0 || stop < start then
        errf "native-trace: span %S timestamps not monotone (%d..%d)" name
          start stop
      else if stop > wall_ns then
        errf "native-trace: span %S stops at %d, after wall_ns %d" name stop
          wall_ns
      else if start < last_stop.(w) then
        errf "native-trace: span %S overlaps its predecessor on worker %d"
          name w
      else begin
        last_stop.(w) <- stop;
        Ok ()
      end)
    (Ok ()) spans

(* ------------------------------------------------------------------ *)
(* P7 native bench section (exsel-bench/1 document)                    *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let bench_p7 j =
  let* () =
    match Json.member "schema" j with
    | Some (Json.String "exsel-bench/1") -> Ok ()
    | _ -> Error "bench-p7: missing schema \"exsel-bench/1\""
  in
  let* experiments =
    match Json.member "experiments" j with
    | Some (Json.List es) -> Ok es
    | _ -> Error "bench-p7: missing experiments array"
  in
  let* table =
    let p7 =
      List.find_opt
        (fun e -> Json.member "id" e = Some (Json.String "P7"))
        experiments
    in
    match p7 with
    | None -> Error "bench-p7: no experiment with id \"P7\""
    | Some e -> (
        match Json.member "table" e with
        | Some (Json.Obj _ as t) -> Ok t
        | _ -> Error "bench-p7: P7 experiment has no table")
  in
  let* () =
    match Json.member "title" table with
    | Some (Json.String t) when contains_sub t "native" -> Ok ()
    | Some (Json.String t) ->
        errf "bench-p7: title %S does not mention \"native\"" t
    | _ -> Error "bench-p7: table lacks a string title"
  in
  let* () =
    match Json.member "header" table with
    | Some
        (Json.List
           (Json.String "algo" :: Json.String "n" :: Json.String "domains"
            :: Json.String "decided" :: _)) ->
        Ok ()
    | _ -> Error "bench-p7: header must start algo, n, domains, decided"
  in
  let* rows =
    match Json.member "rows" table with
    | Some (Json.List rows) when rows <> [] -> Ok rows
    | Some (Json.List []) -> Error "bench-p7: table has no rows"
    | _ -> Error "bench-p7: table lacks rows"
  in
  (* each row: decided = n; accumulate the domain sweep per (algo, n) *)
  let sweeps : (string * int, int list) Hashtbl.t = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        match row with
        | Json.List
            (Json.String algo :: Json.String n :: Json.String domains
             :: Json.String decided :: _) -> (
            match
              ( int_of_string_opt n,
                int_of_string_opt domains,
                int_of_string_opt decided )
            with
            | Some n, Some d, Some dec ->
                if dec <> n then
                  errf "bench-p7: %s at n=%d decided %d of %d" algo n dec n
                else begin
                  let key = (algo, n) in
                  let seen =
                    Option.value (Hashtbl.find_opt sweeps key) ~default:[]
                  in
                  if not (List.mem d seen) then
                    Hashtbl.replace sweeps key (d :: seen);
                  Ok ()
                end
            | _ -> errf "bench-p7: non-integer cells in a %s row" algo)
        | _ -> Error "bench-p7: malformed row")
      (Ok ()) rows
  in
  let* () =
    Hashtbl.fold
      (fun (algo, n) domains acc ->
        let* () = acc in
        if List.length domains < 2 then
          errf "bench-p7: %s at n=%d swept %d domain count(s), need >= 2" algo
            n (List.length domains)
        else Ok ())
      sweeps (Ok ())
  in
  let* () =
    let algos =
      Hashtbl.fold (fun (algo, _) _ acc -> algo :: acc) sweeps []
    in
    List.fold_left
      (fun acc want ->
        let* () = acc in
        if List.mem want algos then Ok ()
        else errf "bench-p7: no rows for algorithm %S" want)
      (Ok ())
      [ "ma"; "efficient"; "adaptive" ]
  in
  let* metrics =
    match Json.member "metrics" j with
    | Some m -> Ok m
    | None -> Error "bench-p7: document embeds no metrics"
  in
  let* () = metrics_doc metrics in
  match Json.member "histograms" metrics with
  | Some (Json.List hists) ->
      let is_native_latency h =
        Json.member "name" h = Some (Json.String "exsel_rename_latency_ns")
        && match Json.member "labels" h with
           | Some (Json.Obj labels) ->
               List.assoc_opt "backend" labels = Some (Json.String "native")
           | _ -> false
      in
      if List.exists is_native_latency hists then Ok ()
      else
        Error
          "bench-p7: metrics lack an exsel_rename_latency_ns histogram \
           labelled backend=\"native\""
  | _ -> Error "bench-p7: metrics lack a histograms array"

(* ------------------------------------------------------------------ *)
(* exsel-service/1 (churn campaign report)                             *)
(* ------------------------------------------------------------------ *)

let service j =
  let int_field what obj k =
    match Json.member k obj with
    | Some (Json.Int i) -> Ok i
    | _ -> errf "service: %s lacks int %S" what k
  in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String "exsel-service/1") -> Ok ()
    | _ -> Error "service: missing schema \"exsel-service/1\""
  in
  let* backend =
    match Json.member "backend" j with
    | Some (Json.String ("sim" | "native" as b)) -> Ok b
    | _ -> Error "service: backend must be \"sim\" or \"native\""
  in
  let* shards = int_field "document" j "shards" in
  let* cap = int_field "document" j "cap" in
  let* () =
    if shards < 1 || cap < 1 then
      Error "service: shards and cap must be positive"
    else Ok ()
  in
  let* cells =
    match Json.member "cells" j with
    | Some (Json.List cs) when cs <> [] -> Ok cs
    | Some (Json.List []) -> Error "service: no cells"
    | _ -> Error "service: missing cells array"
  in
  let* total_violations =
    List.fold_left
      (fun acc cell ->
        let* total = acc in
        let* regime =
          match Json.member "regime" cell with
          | Some (Json.String r) when r <> "" -> Ok r
          | _ -> Error "service: cell lacks a regime"
        in
        let* violations =
          match Json.member "violations" cell with
          | Some (Json.List vs) -> Ok (List.length vs)
          | _ -> errf "service: %s cell lacks a violations array" regime
        in
        let* ok =
          match Json.member "ok" cell with
          | Some (Json.Bool b) -> Ok b
          | _ -> errf "service: %s cell lacks bool \"ok\"" regime
        in
        let* () =
          if ok <> (violations = 0) then
            errf "service: %s cell ok=%b with %d violations" regime ok
              violations
          else Ok ()
        in
        let* acquires = int_field "cell" cell "acquires" in
        let* releases = int_field "cell" cell "releases" in
        let* () =
          if releases > acquires then
            errf "service: %s cell released %d of %d acquires" regime releases
              acquires
          else Ok ()
        in
        let* rows =
          match Json.member "shards" cell with
          | Some (Json.List rows) -> Ok rows
          | _ -> errf "service: %s cell lacks a shards array" regime
        in
        let* () =
          if List.length rows <> shards then
            errf "service: %s cell has %d shard rows for %d shards" regime
              (List.length rows) shards
          else Ok ()
        in
        let* () =
          List.fold_left
            (fun acc row ->
              let* () = acc in
              let* occ = int_field "shard row" row "occupancy_max" in
              let* held = int_field "shard row" row "held_max" in
              let* admitted = int_field "shard row" row "admitted" in
              let* epochs = int_field "shard row" row "epochs" in
              if occ > cap then
                errf "service: %s shard occupancy_max %d exceeds cap %d" regime
                  occ cap
              else if held > occ then
                errf "service: %s shard held_max %d exceeds occupancy_max %d"
                  regime held occ
              else if admitted > cap then
                errf "service: %s shard admitted %d exceeds cap %d" regime
                  admitted cap
              else if epochs < 1 then
                errf "service: %s shard has %d epochs" regime epochs
              else Ok ())
            (Ok ()) rows
        in
        Ok (total + violations))
      (Ok 0) cells
  in
  let* () =
    let* top = int_field "document" j "violations" in
    if top <> total_violations then
      errf "service: top-level violations %d, cells carry %d" top
        total_violations
    else Ok ()
  in
  let* metrics =
    match Json.member "metrics" j with
    | Some m -> Ok m
    | None -> Error "service: document embeds no metrics"
  in
  let* () = metrics_doc metrics in
  let has kind name =
    match Json.member kind metrics with
    | Some (Json.List entries) ->
        List.exists
          (fun e -> Json.member "name" e = Some (Json.String name))
          entries
    | _ -> false
  in
  let latency = "exsel_acquire_latency_" ^
    (match backend with "native" -> "ns" | _ -> "commits")
  in
  if not (has "histograms" latency) then
    errf "service: metrics lack an %s histogram" latency
  else if not (has "gauges" "exsel_shard_occupancy") then
    Error "service: metrics lack exsel_shard_occupancy gauges"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Service documentation cross-references                              *)
(* ------------------------------------------------------------------ *)

let service_docs ~design ~experiments ~algorithms ~readme =
  let require what contents anchors =
    List.fold_left
      (fun acc anchor ->
        let* () = acc in
        if contains_sub contents anchor then Ok ()
        else errf "docs: %s lacks %S" what anchor)
      (Ok ()) anchors
  in
  let* () =
    require "DESIGN.md" design
      [
        "## 14.";
        "generation counter";
        "shard router";
        "lib/service";
        "Router.needs_recycle";
      ]
  in
  let* () =
    require "EXPERIMENTS.md" experiments
      [
        "A service under churn";
        "exsel_cli service";
        "--churn";
        "--shards";
        "hot-shard";
        "Perfetto";
      ]
  in
  let* () =
    require "doc/ALGORITHMS.md" algorithms
      [
        "exclusive-holds";
        "adaptive-bound";
        "crash-pin";
        "generation-reuse";
        "lib/service/core.ml";
        "test/test_service.ml";
      ]
  in
  require "README.md" readme [ "exsel_service"; "exsel_cli service" ]

(* ------------------------------------------------------------------ *)
(* exsel-workload/1 (open-loop traffic reports)                        *)
(* ------------------------------------------------------------------ *)

let workload j =
  let int_field what obj k =
    match Json.member k obj with
    | Some (Json.Int i) -> Ok i
    | _ -> errf "workload: %s lacks int %S" what k
  in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String "exsel-workload/1") -> Ok ()
    | _ -> Error "workload: missing schema \"exsel-workload/1\""
  in
  let* backend =
    match Json.member "backend" j with
    | Some (Json.String ("sim" | "native" as b)) -> Ok b
    | _ -> Error "workload: backend must be \"sim\" or \"native\""
  in
  let* shards = int_field "document" j "shards" in
  let* cap = int_field "document" j "cap" in
  let* rate = int_field "document" j "rate" in
  let* () =
    if shards < 1 || cap < 1 || rate < 1 then
      Error "workload: shards, cap and rate must be positive"
    else Ok ()
  in
  let* cells =
    match Json.member "cells" j with
    | Some (Json.List cs) when cs <> [] -> Ok cs
    | Some (Json.List []) -> Error "workload: no cells"
    | _ -> Error "workload: missing cells array"
  in
  let* total_violations =
    List.fold_left
      (fun acc cell ->
        let* total = acc in
        let* pattern =
          match Json.member "pattern" cell with
          | Some (Json.String p) when p <> "" -> Ok p
          | _ -> Error "workload: cell lacks a pattern"
        in
        let* violations =
          match Json.member "violations" cell with
          | Some (Json.List vs) -> Ok (List.length vs)
          | _ -> errf "workload: %s cell lacks a violations array" pattern
        in
        let* ok =
          match Json.member "ok" cell with
          | Some (Json.Bool b) -> Ok b
          | _ -> errf "workload: %s cell lacks bool \"ok\"" pattern
        in
        let* () =
          if ok <> (violations = 0) then
            errf "workload: %s cell ok=%b with %d violations" pattern ok
              violations
          else Ok ()
        in
        let* arrivals = int_field "cell" cell "arrivals" in
        let* admitted = int_field "cell" cell "admitted" in
        let* rejected = int_field "cell" cell "rejected" in
        let* () =
          if admitted + rejected <> arrivals then
            errf
              "workload: %s cell splits %d arrivals into %d admitted + %d \
               rejected"
              pattern arrivals admitted rejected
          else Ok ()
        in
        let* joins = int_field "cell" cell "joins" in
        let* acquires = int_field "cell" cell "acquires" in
        let* releases = int_field "cell" cell "releases" in
        if joins > admitted then
          errf "workload: %s cell joined %d of %d admitted" pattern joins
            admitted
        else if acquires > joins then
          errf "workload: %s cell acquired %d with %d joins" pattern acquires
            joins
        else if releases > acquires then
          errf "workload: %s cell released %d of %d acquires" pattern releases
            acquires
        else Ok (total + violations))
      (Ok 0) cells
  in
  let* () =
    let* top = int_field "document" j "violations" in
    if top <> total_violations then
      errf "workload: top-level violations %d, cells carry %d" top
        total_violations
    else Ok ()
  in
  let* metrics =
    match Json.member "metrics" j with
    | Some m -> Ok m
    | None -> Error "workload: document embeds no metrics"
  in
  let* () = metrics_doc metrics in
  let has kind name =
    match Json.member kind metrics with
    | Some (Json.List entries) ->
        List.exists
          (fun e -> Json.member "name" e = Some (Json.String name))
          entries
    | _ -> false
  in
  let unit = match backend with "native" -> "ns" | _ -> "commits" in
  let latency = "exsel_workload_acquire_latency_" ^ unit in
  if not (has "histograms" latency) then
    errf "workload: metrics lack an %s histogram" latency
  else if not (has "counters" "exsel_workload_arrivals") then
    Error "workload: metrics lack the exsel_workload_arrivals counter"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Adversary DSL + open-loop documentation cross-references            *)
(* ------------------------------------------------------------------ *)

let adversary_docs ~design ~experiments ~readme =
  let require what contents anchors =
    List.fold_left
      (fun acc anchor ->
        let* () = acc in
        if contains_sub contents anchor then Ok ()
        else errf "docs: %s lacks %S" what anchor)
      (Ok ()) anchors
  in
  let* () =
    require "DESIGN.md" design
      [
        "## 15.";
        "lib/adversary";
        "write-contention budget";
        "crash(half, uniform)";
        "draw-for-draw";
      ]
  in
  let* () =
    require "EXPERIMENTS.md" experiments
      [
        "Open-loop traffic";
        "exsel_cli workload";
        "--adversary";
        "--pattern";
        "p999";
      ]
  in
  require "README.md" readme [ "exsel_cli workload"; "adversary DSL" ]
