(** A dependency-free JSON parser for test and validation code.

    {!Exsel_obs.Json} is an encoder only — the library deliberately never
    parses.  Tests and the document validator, however, need to round-trip
    what the encoder emits ([dune runtest] and CI validate every
    [exsel-*/1] artifact without python).  This parser handles exactly the
    JSON the encoder produces plus ordinary whitespace; it is not a
    general-purpose parser (no surrogate pairs, no leniency about
    malformed input — malformed input raises {!Parse}). *)

exception Parse of string

val parse : string -> Exsel_obs.Json.t
(** Parse one JSON value; the whole string must be consumed.
    @raise Parse on malformed or trailing input. *)

val parse_ndjson : string -> Exsel_obs.Json.t list
(** Parse newline-delimited JSON: one value per non-empty line.
    @raise Parse on any malformed line, reporting its 1-based number. *)

val roundtrip : Exsel_obs.Json.t -> Exsel_obs.Json.t
(** [parse (Json.to_string v)] — the shape most tests want. *)

(** {2 Field accessors}

    Each raises {!Parse} naming the missing/mistyped field, which test
    runners surface as the failure message. *)

val get_int : string -> Exsel_obs.Json.t -> int
val get_string : string -> Exsel_obs.Json.t -> string
val get_list : string -> Exsel_obs.Json.t -> Exsel_obs.Json.t list
val get_bool : string -> Exsel_obs.Json.t -> bool
val get_obj : string -> Exsel_obs.Json.t -> (string * Exsel_obs.Json.t) list
