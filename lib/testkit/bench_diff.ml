(* Perf trend diffing over two exsel-bench/1 documents (DESIGN.md §13).

   The differ is deliberately schema-driven, not metric-name-driven: it
   walks the experiment tables (per-suite, per-cell numeric deltas,
   reported but never gated — throughput cells are machine-dependent)
   and the embedded exsel-metrics/1 registry (histogram quantiles, the
   gated part).  A quantile that grows beyond the relative threshold is
   a regression; so is a suite or histogram that disappears.  Two
   identical documents always diff clean, which is the self-diff
   property CI smoke-tests. *)

module Json = Exsel_obs.Json

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

type delta = { d_key : string; d_old : float; d_new : float }

type t = {
  threshold : float;
  suites : (string * delta list) list;
  quantiles : delta list;
  notes : string list;
  regressions : string list;
}

let regressed t = t.regressions <> []

(* ------------------------------------------------------------------ *)
(* document access                                                     *)
(* ------------------------------------------------------------------ *)

let experiments doc =
  match Json.member "schema" doc with
  | Some (Json.String "exsel-bench/1") -> (
      match Json.member "experiments" doc with
      | Some (Json.List es) ->
          Ok
            (List.filter_map
               (fun e ->
                 match Json.member "id" e with
                 | Some (Json.String id) -> Some (id, e)
                 | _ -> None)
               es)
      | _ -> Error "document lacks an experiments array")
  | _ -> Error "document schema is not \"exsel-bench/1\""

let table_of e =
  match Json.member "table" e with
  | Some t ->
      let strings k =
        match Json.member k t with
        | Some (Json.List l) ->
            List.map (function Json.String s -> s | j -> Json.to_string j) l
        | _ -> []
      in
      let rows =
        match Json.member "rows" t with
        | Some (Json.List rows) ->
            List.map
              (function
                | Json.List cells ->
                    List.map
                      (function Json.String s -> s | j -> Json.to_string j)
                      cells
                | _ -> [])
              rows
        | _ -> []
      in
      (strings "header", rows)
  | None -> ([], [])

(* ------------------------------------------------------------------ *)
(* per-suite cell deltas (reporting only)                              *)
(* ------------------------------------------------------------------ *)

(* A row is identified by its non-numeric cells (algo names, policy
   names, ...); purely numeric rows fall back to the row index.  Cell
   deltas are informational: wall-clock cells differ between any two
   honest runs. *)
let row_key index cells =
  let keys = List.filter (fun c -> float_of_string_opt c = None) cells in
  if keys = [] then Printf.sprintf "row%d" index else String.concat "/" keys

let cell_deltas header old_rows new_rows =
  let col_name c =
    match List.nth_opt header c with Some h -> h | None -> Printf.sprintf "col%d" c
  in
  List.concat
    (List.mapi
       (fun i (old_row, new_row) ->
         let key = row_key i old_row in
         List.concat
           (List.mapi
              (fun c (o, n) ->
                match (float_of_string_opt o, float_of_string_opt n) with
                | Some fo, Some fn when fo <> fn ->
                    [
                      {
                        d_key = Printf.sprintf "[%s] %s" key (col_name c);
                        d_old = fo;
                        d_new = fn;
                      };
                    ]
                | _ -> [])
              (List.combine
                 (List.filteri (fun c _ -> c < List.length new_row) old_row)
                 (List.filteri (fun c _ -> c < List.length old_row) new_row))))
       (List.combine
          (List.filteri (fun i _ -> i < List.length new_rows) old_rows)
          (List.filteri (fun i _ -> i < List.length old_rows) new_rows)))

(* ------------------------------------------------------------------ *)
(* quantile regressions (the gated part)                               *)
(* ------------------------------------------------------------------ *)

let labels_string h =
  match Json.member "labels" h with
  | Some (Json.Obj kvs) when kvs <> [] ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=%s" k
                 (match v with Json.String s -> Printf.sprintf "%S" s | j -> Json.to_string j))
             (List.sort compare kvs))
      ^ "}"
  | _ -> ""

let hist_key h =
  (match Json.member "name" h with
  | Some (Json.String n) -> n
  | _ -> "?")
  ^ labels_string h

let histograms doc =
  match Json.member "metrics" doc with
  | None -> []
  | Some m -> (
      match Json.member "histograms" m with
      | Some (Json.List hs) -> List.map (fun h -> (hist_key h, h)) hs
      | _ -> [])

let quantile_keys = [ "p50"; "p90"; "p99"; "p999" ]

let quantile_diffs ~threshold old_hists new_hists =
  List.fold_left
    (fun (deltas, regs) (key, old_h) ->
      match List.assoc_opt key new_hists with
      | None ->
          ( deltas,
            Printf.sprintf "histogram %s present in old, missing in new" key
            :: regs )
      | Some new_h ->
          List.fold_left
            (fun (deltas, regs) q ->
              match (Json.member q old_h, Json.member q new_h) with
              | Some (Json.Int o), Some (Json.Int n) when o <> n ->
                  let d =
                    {
                      d_key = Printf.sprintf "%s %s" key q;
                      d_old = float_of_int o;
                      d_new = float_of_int n;
                    }
                  in
                  let regs =
                    if float_of_int n > float_of_int o *. (1. +. threshold)
                    then
                      Printf.sprintf
                        "%s %s regressed: %d -> %d (beyond +%.0f%%)" key q o n
                        (threshold *. 100.)
                      :: regs
                    else regs
                  in
                  (d :: deltas, regs)
              | _ -> (deltas, regs))
            (deltas, regs) quantile_keys)
    ([], []) old_hists
  |> fun (ds, rs) -> (List.rev ds, List.rev rs)

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let diff ?(threshold = 0.25) ~old_doc ~new_doc () =
  if threshold < 0.0 then errf "threshold must be non-negative"
  else
    let* old_exps = experiments old_doc in
    let* new_exps = experiments new_doc in
    let missing =
      List.filter_map
        (fun (id, _) ->
          if List.mem_assoc id new_exps then None
          else Some (Printf.sprintf "suite %s present in old, missing in new" id))
        old_exps
    in
    let added =
      List.filter_map
        (fun (id, _) ->
          if List.mem_assoc id old_exps then None
          else Some (Printf.sprintf "suite %s is new" id))
        new_exps
    in
    let suites, shape_notes =
      List.fold_left
        (fun (suites, notes) (id, old_e) ->
          match List.assoc_opt id new_exps with
          | None -> (suites, notes)
          | Some new_e ->
              let header, old_rows = table_of old_e in
              let _, new_rows = table_of new_e in
              let notes =
                if List.length old_rows <> List.length new_rows then
                  Printf.sprintf "suite %s: %d rows became %d (capped run?)" id
                    (List.length old_rows) (List.length new_rows)
                  :: notes
                else notes
              in
              ((id, cell_deltas header old_rows new_rows) :: suites, notes))
        ([], []) old_exps
    in
    let qdeltas, qregs =
      quantile_diffs ~threshold (histograms old_doc) (histograms new_doc)
    in
    Ok
      {
        threshold;
        suites = List.rev suites;
        quantiles = qdeltas;
        notes = added @ List.rev shape_notes;
        regressions = missing @ qregs;
      }

let pct d =
  if d.d_old = 0.0 then "(new)"
  else Printf.sprintf "(%+.1f%%)" ((d.d_new -. d.d_old) /. d.d_old *. 100.)

let render t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "bench_diff: threshold +%.0f%% on histogram quantiles" (t.threshold *. 100.);
  List.iter (fun n -> line "note: %s" n) t.notes;
  List.iter
    (fun (id, deltas) ->
      if deltas <> [] then begin
        line "suite %s: %d cell(s) changed" id (List.length deltas);
        List.iter
          (fun d -> line "  %s: %g -> %g %s" d.d_key d.d_old d.d_new (pct d))
          deltas
      end)
    t.suites;
  if t.quantiles <> [] then begin
    line "quantiles: %d changed" (List.length t.quantiles);
    List.iter
      (fun d -> line "  %s: %g -> %g %s" d.d_key d.d_old d.d_new (pct d))
      t.quantiles
  end;
  if t.regressions = [] then line "no regressions"
  else List.iter (fun r -> line "REGRESSION: %s" r) t.regressions;
  Buffer.contents buf
