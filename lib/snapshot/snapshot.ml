type 'a cell = { value : 'a; seq : int; view : 'a array option }

module type S = sig
  type memory
  type 'a t

  val create : memory -> name:string -> n:int -> init:'a -> 'a t
  val size : 'a t -> int
  val update : 'a t -> me:int -> 'a -> unit
  val scan : 'a t -> me:int -> 'a array
  val peek : 'a t -> 'a array
end

(* Written once against the BACKEND interface (DESIGN.md §12): the
   double-collect-with-helping argument only needs atomic registers, so
   the same source is linearizable on the simulator and on native
   Atomic.t cells. *)
module Make (B : Exsel_backend.Intf.S) = struct
  type memory = B.memory

  type 'a t = {
    n : int;
    cells : 'a cell B.reg array;
    next_seq : int array;  (* owner-local sequence counters, one per slot *)
  }

  let create mem ~name ~n ~init =
    if n <= 0 then invalid_arg "Snapshot.create: n must be positive";
    let cells =
      Array.init n (fun i ->
          B.alloc mem
            ~name:(Printf.sprintf "%s[%d]" name i)
            { value = init; seq = 0; view = None })
    in
    { n; cells; next_seq = Array.make n 0 }

  let size t = t.n

  let collect t = Array.map B.read t.cells

  let seqs_equal a b =
    let n = Array.length a in
    let rec go i = i >= n || (a.(i).seq = b.(i).seq && go (i + 1)) in
    go 0

  (* Double collect with embedded-view helping.  A scanner that sees the
     same component advance in two distinct collect rounds knows that
     component's owner completed a full update — including its embedded
     scan — entirely within this scan's interval, so the embedded view is
     a valid linearization point. *)
  let scan t ~me:_ =
    let moved = Array.make t.n 0 in
    let rec attempt prev =
      let cur = collect t in
      if seqs_equal prev cur then Array.map (fun c -> c.value) cur
      else begin
        let borrowed = ref None in
        Array.iteri
          (fun i c ->
            if c.seq <> prev.(i).seq then begin
              moved.(i) <- moved.(i) + 1;
              if moved.(i) >= 2 && !borrowed = None then
                match c.view with
                | Some view -> borrowed := Some view
                | None ->
                    (* unreachable: every committed update embeds a view *)
                    assert false
            end)
          cur;
        match !borrowed with Some view -> view | None -> attempt cur
      end
    in
    attempt (collect t)

  let update t ~me v =
    if me < 0 || me >= t.n then invalid_arg "Snapshot.update: slot out of range";
    let view = scan t ~me in
    t.next_seq.(me) <- t.next_seq.(me) + 1;
    B.write t.cells.(me) { value = v; seq = t.next_seq.(me); view = Some view }

  let peek t = Array.map (fun r -> (B.peek r).value) t.cells
end

include Make (Exsel_sim.Backend)
