(** Wait-free single-writer atomic snapshot from read/write registers.

    The object holds [n] components; component [i] is written only by the
    process occupying slot [i] and read by all.  [scan] returns a view of
    all components that is linearizable with every [update] — the atomic
    snapshot object of Afek, Attiya, Dolev, Gafni, Merritt and Shavit
    (JACM 1993), which the paper's Section 5 assumes as object [W].

    Implementation: unbounded sequence numbers with double collects; an
    updater embeds the view of a scan it performs before writing, and a
    scanner that observes the same component advance twice borrows that
    embedded view.  Both operations are wait-free: [scan] commits at most
    O(n²) reads, [update] O(n²) reads and one write.

    All operations must be called from inside a backend process
    ({!Exsel_sim.Runtime} on the simulator, an engine task natively). *)

(** The snapshot over any {!Exsel_backend.Intf.S} substrate.  The
    single-writer discipline and the helping argument only need atomic
    registers, so the functor is sound on both backends. *)
module type S = sig
  type memory
  type 'a t

  val create : memory -> name:string -> n:int -> init:'a -> 'a t
  (** [create mem ~name ~n ~init] allocates an [n]-component snapshot whose
      components all start as [init].  Uses [n] shared registers. *)

  val size : 'a t -> int

  val update : 'a t -> me:int -> 'a -> unit
  (** [update t ~me v] sets component [me] to [v].  Only one process may
      ever act as writer of a given slot (single-writer discipline is the
      caller's responsibility). *)

  val scan : 'a t -> me:int -> 'a array
  (** [scan t ~me] returns an atomic view of all [n] components. *)

  val peek : 'a t -> 'a array
  (** Current component values, outside of any execution (test inspection
      only; not linearizable). *)
end

module Make (B : Exsel_backend.Intf.S) : S with type memory = B.memory

include S with type memory = Exsel_sim.Memory.t
(** The simulator instantiation. *)
